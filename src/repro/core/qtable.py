"""The |I| x |I| action-value table of Section III-C.

``Q[s, e]`` estimates how good it is to move from the item at index ``s``
to the item at index ``e``.  Because the interaction graph is complete
and states are items, the table is logically a square matrix over
catalog indices; the diagonal (self-transitions) is never used.

Two storage backends implement that contract:

* :class:`QTable` — the dense ``float64`` matrix of the original
  reproduction.  O(1) reads/writes and vectorized row slices, but
  ``8 * |I|^2`` bytes of memory (a 50k-item catalog would need ~20 GB).
* :class:`SparseQTable` — dict-of-rows storage holding only entries that
  were ever written.  SARSA touches at most ``episodes * horizon`` cells,
  so memory is proportional to training effort, not catalog size.

Both derive from :class:`QTableBase` (exported as ``QTableBackend``),
which owns id resolution, greedy argmax semantics (including NaN
handling and tie-breaking), entry import/export, and copying — so the
backends are bit-identical everywhere except raw storage.  Use
:func:`make_qtable` to pick a backend by catalog size.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog
from .exceptions import PlanningError

#: Catalog size at or above which :func:`make_qtable`'s ``"auto"`` mode
#: picks the sparse backend.  At the threshold the dense matrix costs
#: ``8 * 2048^2`` = 32 MiB per table; the registry's warm LRU keeps
#: several tables alive at once, so the cutover is deliberately well
#: below the point where a single table hurts.
SPARSE_BACKEND_THRESHOLD = 2048


class QTableBase:
    """Shared behaviour of every Q-table backend.

    Subclasses provide raw storage via :meth:`q_value`,
    :meth:`row_values`, :meth:`_set_idx`, :meth:`td_update`,
    :meth:`to_entries`, :meth:`best_continuation`, and
    :meth:`_copy_storage_into`; everything keyed by item *ids*, the
    greedy lookups, and the (de)serialization entry points live here so
    the two backends cannot drift apart semantically.

    Parameters
    ----------
    catalog:
        Defines the index space; the table is ``len(catalog)`` squared.
    initial_value:
        Optimistic or zero initialization for all entries.
    """

    def __init__(self, catalog: Catalog, initial_value: float = 0.0) -> None:
        self.catalog = catalog
        self._updates = 0
        #: Entries dropped by the most recent :meth:`from_entries` load
        #: because their ids were absent from the catalog.
        self.skipped_on_load = 0

    # ------------------------------------------------------------------
    # Storage interface (implemented per backend)
    # ------------------------------------------------------------------

    def q_value(self, state_idx: int, action_idx: int) -> float:
        """``Q(s, e)`` by catalog indices."""
        raise NotImplementedError

    def row_values(self, state_idx: int, action_idx: np.ndarray) -> np.ndarray:
        """``Q(s, .)`` over the given action indices as a float64 array."""
        raise NotImplementedError

    def _set_idx(self, state_idx: int, action_idx: int, value: float) -> None:
        raise NotImplementedError

    def td_update(
        self,
        state_idx: int,
        action_idx: int,
        target: float,
        learning_rate: float,
    ) -> float:
        """Apply ``Q += alpha * (target - Q)`` and return the new value."""
        raise NotImplementedError

    def to_entries(self) -> Dict[Tuple[str, str], float]:
        """Sparse dict of the learned entries, keyed by item-id pairs.

        An entry is *learned* when it was ever written through
        :meth:`set` or :meth:`td_update` (dense backend: or when its
        value differs from zero, a safety net for tables built by direct
        array manipulation).  Tracking touched cells — not just non-zero
        values — means a genuinely learned entry whose value decayed to
        exactly 0.0 survives a save/load round trip.

        Used by transfer learning to re-key values onto another catalog,
        by persistence, and by tests to snapshot learned policies.
        """
        raise NotImplementedError

    def best_continuation(
        self, cand_idx: np.ndarray, remaining_idx: np.ndarray
    ) -> np.ndarray:
        """``max(0, max_b Q(a, b))`` for each candidate ``a``.

        ``b`` ranges over ``remaining_idx`` minus the candidate itself
        (no self-transition).  Requires ``remaining_idx`` sorted
        ascending and every candidate present in it — exactly the shape
        the recommender's lookahead produces.  The clamp at zero makes
        the result backend-independent: unstored sparse cells and dense
        zero cells agree, and an empty continuation set yields 0.
        """
        raise NotImplementedError

    def _copy_storage_into(self, clone: "QTableBase") -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """``(|I|, |I|)``."""
        n = len(self.catalog)
        return (n, n)

    @property
    def update_count(self) -> int:
        """Number of TD updates applied (learning-progress metric)."""
        return self._updates

    @update_count.setter
    def update_count(self, count: int) -> None:
        """Restore the update counter (deserialization / transfer).

        The counter marks a table as "trained" to the recommender, so
        restoring it is part of the persistence contract rather than a
        private poke.
        """
        if count < 0:
            raise PlanningError("update_count must be >= 0")
        self._updates = int(count)

    def get(self, state_id: str, action_id: str) -> float:
        """``Q(s, e)`` by item ids."""
        s = self.catalog.index_of(state_id)
        e = self.catalog.index_of(action_id)
        return self.q_value(s, e)

    def set(self, state_id: str, action_id: str, value: float) -> None:
        """Overwrite one entry (used by tests and transfer mapping)."""
        s = self.catalog.index_of(state_id)
        e = self.catalog.index_of(action_id)
        self._set_idx(s, e, value)

    # ------------------------------------------------------------------
    # Greedy lookups
    # ------------------------------------------------------------------

    def best_action(
        self,
        state_id: str,
        allowed_ids: Sequence[str],
        rng: Optional[np.random.Generator] = None,
    ) -> str:
        """Argmax over allowed actions from ``state_id``.

        Ties are broken uniformly at random when ``rng`` is given, else
        deterministically by ``allowed_ids`` order (the first tied entry
        of the sequence wins).  NaN Q-values never win: they are treated
        as minus infinity, and if *every* allowed value is NaN the tie is
        broken over the whole allowed set instead of raising.
        """
        if not allowed_ids:
            raise PlanningError(
                f"no allowed actions from state {state_id!r}"
            )
        s = self.catalog.index_of(state_id)
        indices = np.fromiter(
            (self.catalog.index_of(a) for a in allowed_ids),
            dtype=np.int64,
            count=len(allowed_ids),
        )
        row = self.row_values(s, indices)
        finite = row[~np.isnan(row)]
        if finite.size == 0:
            winners = list(allowed_ids)
        else:
            best = finite.max()
            winners = [
                allowed_ids[i]
                for i in range(len(allowed_ids))
                if row[i] >= best
            ]
        if rng is not None and len(winners) > 1:
            return winners[int(rng.integers(len(winners)))]
        return winners[0]

    def best_action_idx(
        self,
        state_idx: int,
        allowed_idx: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Index-based :meth:`best_action` for the greedy hot loops.

        Semantically identical to resolving ids through the catalog and
        calling :meth:`best_action` (same NaN handling, same winner set
        and order, same number of rng draws) but operating directly on
        catalog indices, so the traversal never rebuilds id lists.
        Returns the chosen *catalog index*.
        """
        allowed_idx = np.asarray(allowed_idx, dtype=np.int64)
        if allowed_idx.size == 0:
            raise PlanningError(
                f"no allowed actions from state index {state_idx}"
            )
        row = self.row_values(int(state_idx), allowed_idx)
        nan = np.isnan(row)
        if nan.all():
            winners = np.arange(allowed_idx.size)
        else:
            best = row[~nan].max()
            # NaN >= best is False, so NaN entries never enter the set —
            # matching best_action's explicit filtering.
            winners = np.flatnonzero(row >= best)
        if rng is not None and winners.size > 1:
            return int(allowed_idx[int(winners[int(rng.integers(winners.size))])])
        return int(allowed_idx[int(winners[0])])

    def action_values(
        self, state_id: str, allowed_ids: Sequence[str]
    ) -> Dict[str, float]:
        """Q-values of the allowed actions from ``state_id``."""
        s = self.catalog.index_of(state_id)
        return {
            a: self.q_value(s, self.catalog.index_of(a))
            for a in allowed_ids
        }

    # ------------------------------------------------------------------
    # Serialization / transfer support
    # ------------------------------------------------------------------

    @classmethod
    def from_entries(
        cls,
        catalog: Catalog,
        entries: Dict[Tuple[str, str], float],
        strict: bool = False,
        update_count: Optional[int] = None,
    ) -> "QTableBase":
        """Rebuild a table over ``catalog`` from id-keyed entries.

        Entries whose ids are absent from ``catalog`` are skipped unless
        ``strict`` is True — this permissive behaviour is exactly what
        cross-catalog transfer needs; the number of skipped entries is
        recorded on the public :attr:`skipped_on_load` attribute.

        ``update_count`` restores the training-progress counter (e.g.
        from a policy file's metadata) so callers never have to reach
        into private state to mark a table as trained.

        Works on any backend class: ``QTable.from_entries(...)`` and
        ``SparseQTable.from_entries(...)`` accept the same entry dicts,
        which is what makes policy artifacts backend-portable.
        """
        table = cls(catalog)
        skipped = 0
        for (state_id, action_id), value in entries.items():
            if state_id in catalog and action_id in catalog:
                table.set(state_id, action_id, value)
            elif strict:
                missing = state_id if state_id not in catalog else action_id
                raise PlanningError(
                    f"entry references item {missing!r} not in catalog "
                    f"{catalog.name!r}"
                )
            else:
                skipped += 1
        table.skipped_on_load = skipped
        if update_count is not None:
            table.update_count = update_count
        return table

    def copy(self) -> "QTableBase":
        """Deep copy over the same catalog (same backend).

        Carries every piece of public metadata, including
        :attr:`skipped_on_load` — a clone of a loaded table keeps its
        load provenance.
        """
        clone = type(self)(self.catalog)
        clone._updates = self._updates
        clone.skipped_on_load = self.skipped_on_load
        self._copy_storage_into(clone)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{type(self).__name__}(catalog={self.catalog.name!r}, "
            f"shape={self.shape}, updates={self._updates})"
        )


#: Public name of the backend contract: anything accepting "a Q-table"
#: should type against / duck-type this, not the dense class.
QTableBackend = QTableBase


class QTable(QTableBase):
    """Dense action-value table keyed by catalog item indices.

    The faithful |I| x |I| ``float64`` matrix of the paper.  Right for
    catalogs up to a few thousand items; beyond that use
    :class:`SparseQTable` (or let :func:`make_qtable` decide).
    """

    def __init__(self, catalog: Catalog, initial_value: float = 0.0) -> None:
        super().__init__(catalog, initial_value)
        n = len(catalog)
        self._values = np.full((n, n), float(initial_value), dtype=np.float64)
        self._touched = np.zeros((n, n), dtype=bool)

    @property
    def values(self) -> np.ndarray:
        """The underlying matrix (a live view; do not mutate directly)."""
        return self._values

    def q_value(self, state_idx: int, action_idx: int) -> float:
        return float(self._values[state_idx, action_idx])

    def row_values(self, state_idx: int, action_idx: np.ndarray) -> np.ndarray:
        return self._values[state_idx, action_idx]

    def _set_idx(self, state_idx: int, action_idx: int, value: float) -> None:
        self._values[state_idx, action_idx] = value
        self._touched[state_idx, action_idx] = True

    def td_update(
        self,
        state_idx: int,
        action_idx: int,
        target: float,
        learning_rate: float,
    ) -> float:
        old = self._values[state_idx, action_idx]
        new = old + learning_rate * (target - old)
        self._values[state_idx, action_idx] = new
        self._touched[state_idx, action_idx] = True
        self._updates += 1
        return float(new)

    def to_entries(self) -> Dict[Tuple[str, str], float]:
        # One reused |I|^2 boolean temporary (|= is in place) and bulk
        # flat-index extraction — no per-cell Python indexing.
        mask = self._values != 0.0
        mask |= self._touched
        flat = np.flatnonzero(mask.ravel())
        n = self._values.shape[1]
        rows, cols = np.divmod(flat, n)
        values = self._values.ravel()[flat]
        ids = self.catalog.item_ids
        return {
            (ids[r], ids[c]): v
            for r, c, v in zip(
                rows.tolist(), cols.tolist(), values.tolist()
            )
        }

    def best_continuation(
        self, cand_idx: np.ndarray, remaining_idx: np.ndarray
    ) -> np.ndarray:
        continuation = self._values[np.ix_(cand_idx, remaining_idx)].copy()
        # Mask each candidate's own column (no self-transition); the
        # candidates are a subset of the remaining items, and
        # remaining_idx is sorted ascending.
        self_col = np.searchsorted(remaining_idx, cand_idx)
        rows = np.arange(len(cand_idx))
        continuation[rows, self_col] = -np.inf
        return np.maximum(continuation.max(axis=1), 0.0)

    def _copy_storage_into(self, clone: "QTableBase") -> None:
        assert isinstance(clone, QTable)
        clone._values = self._values.copy()
        clone._touched = self._touched.copy()


class SparseQTable(QTableBase):
    """Dict-of-rows action-value table for large catalogs.

    Stores only entries ever written through :meth:`set` /
    :meth:`td_update`; unstored cells read as the implicit 0.0 the dense
    backend initializes with.  Memory scales with the number of learned
    entries (at most ``episodes * horizon`` under SARSA) instead of
    ``|I|^2``, which is what lets a 50k-item catalog train in megabytes
    where the dense matrix would need ~20 GB.

    Only zero initialization is supported: a non-zero ``initial_value``
    would have to materialize the full matrix, defeating the backend.
    """

    def __init__(self, catalog: Catalog, initial_value: float = 0.0) -> None:
        if initial_value != 0.0:
            raise PlanningError(
                "SparseQTable only supports initial_value=0.0 (a non-zero "
                "default would densify the table); use QTable for "
                "optimistic initialization"
            )
        super().__init__(catalog, initial_value)
        self._rows: Dict[int, Dict[int, float]] = {}

    @property
    def values(self) -> np.ndarray:
        raise PlanningError(
            "SparseQTable has no dense value matrix; use row_values(), "
            "q_value(), or best_continuation() instead"
        )

    @property
    def nnz(self) -> int:
        """Number of stored entries (diagnostics / memory accounting)."""
        return sum(len(row) for row in self._rows.values())

    def q_value(self, state_idx: int, action_idx: int) -> float:
        row = self._rows.get(int(state_idx))
        if row is None:
            return 0.0
        return float(row.get(int(action_idx), 0.0))

    def row_values(self, state_idx: int, action_idx: np.ndarray) -> np.ndarray:
        row = self._rows.get(int(state_idx))
        if not row:
            return np.zeros(len(action_idx), dtype=np.float64)
        get = row.get
        return np.fromiter(
            (get(int(a), 0.0) for a in action_idx),
            dtype=np.float64,
            count=len(action_idx),
        )

    def _set_idx(self, state_idx: int, action_idx: int, value: float) -> None:
        self._rows.setdefault(int(state_idx), {})[int(action_idx)] = float(
            value
        )

    def td_update(
        self,
        state_idx: int,
        action_idx: int,
        target: float,
        learning_rate: float,
    ) -> float:
        row = self._rows.setdefault(int(state_idx), {})
        old = row.get(int(action_idx), 0.0)
        new = old + learning_rate * (target - old)
        row[int(action_idx)] = new
        self._updates += 1
        return float(new)

    def to_entries(self) -> Dict[Tuple[str, str], float]:
        ids = self.catalog.item_ids
        entries: Dict[Tuple[str, str], float] = {}
        # Row-major sorted order matches the dense backend's scan order,
        # so iteration order (and hence any order-sensitive downstream
        # rendering) is backend-independent.
        for s in sorted(self._rows):
            row = self._rows[s]
            state_id = ids[s]
            for a in sorted(row):
                entries[(state_id, ids[a])] = float(row[a])
        return entries

    def best_continuation(
        self, cand_idx: np.ndarray, remaining_idx: np.ndarray
    ) -> np.ndarray:
        # Scan each candidate's stored entries (few) against a remaining
        # lookup instead of slicing a dense submatrix.  The clamp at 0
        # mirrors the dense path exactly: unstored remaining cells read
        # 0.0 there, so the dense max is >= 0 whenever any unstored
        # remaining cell exists, and the explicit clamp covers the rest.
        in_remaining = np.zeros(len(self.catalog), dtype=bool)
        in_remaining[remaining_idx] = True
        out = np.zeros(len(cand_idx), dtype=np.float64)
        for j, s in enumerate(cand_idx.tolist()):
            row = self._rows.get(int(s))
            if not row:
                continue
            best = 0.0
            for a, value in row.items():
                if a != s and value > best and in_remaining[a]:
                    best = value
            out[j] = best
        return out

    def _copy_storage_into(self, clone: "QTableBase") -> None:
        assert isinstance(clone, SparseQTable)
        clone._rows = {s: dict(row) for s, row in self._rows.items()}


_BACKENDS: Dict[str, type] = {"dense": QTable, "sparse": SparseQTable}


def resolve_backend(catalog: Catalog, backend: str = "auto") -> type:
    """The backend *class* for a catalog under a selection policy.

    ``backend`` is ``"dense"``, ``"sparse"``, or ``"auto"`` (dense below
    :data:`SPARSE_BACKEND_THRESHOLD` items, sparse at or above it).
    """
    if backend == "auto":
        backend = (
            "sparse"
            if len(catalog) >= SPARSE_BACKEND_THRESHOLD
            else "dense"
        )
    try:
        return _BACKENDS[backend]
    except KeyError:
        raise PlanningError(
            f"unknown qtable backend {backend!r}; expected 'auto', "
            f"'dense', or 'sparse'"
        ) from None


def make_qtable(
    catalog: Catalog, backend: str = "auto", initial_value: float = 0.0
) -> QTableBase:
    """Build a Q-table over ``catalog`` with the selected backend.

    The single construction point used by the learner, the trainer, the
    policy loader, and transfer — so ``PlannerConfig.qtable_backend``
    steers every table in the system through one switch.
    """
    return resolve_backend(catalog, backend)(catalog, initial_value)
