"""The |I| x |I| action-value table of Section III-C.

``Q[s, e]`` estimates how good it is to move from the item at index ``s``
to the item at index ``e``.  Because the interaction graph is complete
and states are items, the table is a dense square matrix over catalog
indices; the diagonal (self-transitions) is never used.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog
from .exceptions import PlanningError


class QTable:
    """Dense action-value table keyed by catalog item indices.

    Parameters
    ----------
    catalog:
        Defines the index space; the table is ``len(catalog)`` squared.
    initial_value:
        Optimistic or zero initialization for all entries.
    """

    def __init__(self, catalog: Catalog, initial_value: float = 0.0) -> None:
        self.catalog = catalog
        n = len(catalog)
        self._values = np.full((n, n), float(initial_value), dtype=np.float64)
        self._touched = np.zeros((n, n), dtype=bool)
        self._updates = 0
        #: Entries dropped by the most recent :meth:`from_entries` load
        #: because their ids were absent from the catalog.
        self.skipped_on_load = 0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """``(|I|, |I|)``."""
        return self._values.shape

    @property
    def update_count(self) -> int:
        """Number of TD updates applied (learning-progress metric)."""
        return self._updates

    @update_count.setter
    def update_count(self, count: int) -> None:
        """Restore the update counter (deserialization / transfer).

        The counter marks a table as "trained" to the recommender, so
        restoring it is part of the persistence contract rather than a
        private poke.
        """
        if count < 0:
            raise PlanningError("update_count must be >= 0")
        self._updates = int(count)

    @property
    def values(self) -> np.ndarray:
        """The underlying matrix (a live view; do not mutate directly)."""
        return self._values

    def get(self, state_id: str, action_id: str) -> float:
        """``Q(s, e)`` by item ids."""
        s = self.catalog.index_of(state_id)
        e = self.catalog.index_of(action_id)
        return float(self._values[s, e])

    def set(self, state_id: str, action_id: str, value: float) -> None:
        """Overwrite one entry (used by tests and transfer mapping)."""
        s = self.catalog.index_of(state_id)
        e = self.catalog.index_of(action_id)
        self._values[s, e] = value
        self._touched[s, e] = True

    def td_update(
        self,
        state_idx: int,
        action_idx: int,
        target: float,
        learning_rate: float,
    ) -> float:
        """Apply ``Q += alpha * (target - Q)`` and return the new value."""
        old = self._values[state_idx, action_idx]
        new = old + learning_rate * (target - old)
        self._values[state_idx, action_idx] = new
        self._touched[state_idx, action_idx] = True
        self._updates += 1
        return float(new)

    # ------------------------------------------------------------------
    # Greedy lookups
    # ------------------------------------------------------------------

    def best_action(
        self,
        state_id: str,
        allowed_ids: Sequence[str],
        rng: Optional[np.random.Generator] = None,
    ) -> str:
        """Argmax over allowed actions from ``state_id``.

        Ties are broken uniformly at random when ``rng`` is given, else
        deterministically by ``allowed_ids`` order (the first tied entry
        of the sequence wins).  NaN Q-values never win: they are treated
        as minus infinity, and if *every* allowed value is NaN the tie is
        broken over the whole allowed set instead of raising.
        """
        if not allowed_ids:
            raise PlanningError(
                f"no allowed actions from state {state_id!r}"
            )
        s = self.catalog.index_of(state_id)
        indices = np.fromiter(
            (self.catalog.index_of(a) for a in allowed_ids),
            dtype=np.int64,
            count=len(allowed_ids),
        )
        row = self._values[s, indices]
        finite = row[~np.isnan(row)]
        if finite.size == 0:
            winners = list(allowed_ids)
        else:
            best = finite.max()
            winners = [
                allowed_ids[i]
                for i in range(len(allowed_ids))
                if row[i] >= best
            ]
        if rng is not None and len(winners) > 1:
            return winners[int(rng.integers(len(winners)))]
        return winners[0]

    def action_values(
        self, state_id: str, allowed_ids: Sequence[str]
    ) -> Dict[str, float]:
        """Q-values of the allowed actions from ``state_id``."""
        s = self.catalog.index_of(state_id)
        return {
            a: float(self._values[s, self.catalog.index_of(a)])
            for a in allowed_ids
        }

    # ------------------------------------------------------------------
    # Serialization / transfer support
    # ------------------------------------------------------------------

    def to_entries(self) -> Dict[Tuple[str, str], float]:
        """Sparse dict of the learned entries, keyed by item-id pairs.

        An entry is *learned* when it was ever written through
        :meth:`set` or :meth:`td_update`, or when its value differs from
        zero (safety net for tables built by direct array manipulation).
        Tracking touched cells — not just non-zero values — means a
        genuinely learned entry whose value decayed to exactly 0.0
        survives a save/load round trip.

        Used by transfer learning to re-key values onto another catalog,
        by persistence, and by tests to snapshot learned policies.
        """
        entries: Dict[Tuple[str, str], float] = {}
        ids = self.catalog.item_ids
        rows, cols = np.nonzero(self._touched | (self._values != 0.0))
        for r, c in zip(rows.tolist(), cols.tolist()):
            entries[(ids[r], ids[c])] = float(self._values[r, c])
        return entries

    @classmethod
    def from_entries(
        cls,
        catalog: Catalog,
        entries: Dict[Tuple[str, str], float],
        strict: bool = False,
        update_count: Optional[int] = None,
    ) -> "QTable":
        """Rebuild a table over ``catalog`` from id-keyed entries.

        Entries whose ids are absent from ``catalog`` are skipped unless
        ``strict`` is True — this permissive behaviour is exactly what
        cross-catalog transfer needs; the number of skipped entries is
        recorded on the public :attr:`skipped_on_load` attribute.

        ``update_count`` restores the training-progress counter (e.g.
        from a policy file's metadata) so callers never have to reach
        into private state to mark a table as trained.
        """
        table = cls(catalog)
        skipped = 0
        for (state_id, action_id), value in entries.items():
            if state_id in catalog and action_id in catalog:
                table.set(state_id, action_id, value)
            elif strict:
                missing = state_id if state_id not in catalog else action_id
                raise PlanningError(
                    f"entry references item {missing!r} not in catalog "
                    f"{catalog.name!r}"
                )
            else:
                skipped += 1
        table.skipped_on_load = skipped
        if update_count is not None:
            table.update_count = update_count
        return table

    def copy(self) -> "QTable":
        """Deep copy over the same catalog."""
        clone = QTable(self.catalog)
        clone._values = self._values.copy()
        clone._touched = self._touched.copy()
        clone._updates = self._updates
        return clone

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"QTable(catalog={self.catalog.name!r}, shape={self.shape}, "
            f"updates={self._updates})"
        )
