"""The |I| x |I| action-value table of Section III-C.

``Q[s, e]`` estimates how good it is to move from the item at index ``s``
to the item at index ``e``.  Because the interaction graph is complete
and states are items, the table is a dense square matrix over catalog
indices; the diagonal (self-transitions) is never used.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog
from .exceptions import PlanningError


class QTable:
    """Dense action-value table keyed by catalog item indices.

    Parameters
    ----------
    catalog:
        Defines the index space; the table is ``len(catalog)`` squared.
    initial_value:
        Optimistic or zero initialization for all entries.
    """

    def __init__(self, catalog: Catalog, initial_value: float = 0.0) -> None:
        self.catalog = catalog
        n = len(catalog)
        self._values = np.full((n, n), float(initial_value), dtype=np.float64)
        self._updates = 0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """``(|I|, |I|)``."""
        return self._values.shape

    @property
    def update_count(self) -> int:
        """Number of TD updates applied (learning-progress metric)."""
        return self._updates

    @property
    def values(self) -> np.ndarray:
        """The underlying matrix (a live view; do not mutate directly)."""
        return self._values

    def get(self, state_id: str, action_id: str) -> float:
        """``Q(s, e)`` by item ids."""
        s = self.catalog.index_of(state_id)
        e = self.catalog.index_of(action_id)
        return float(self._values[s, e])

    def set(self, state_id: str, action_id: str, value: float) -> None:
        """Overwrite one entry (used by tests and transfer mapping)."""
        s = self.catalog.index_of(state_id)
        e = self.catalog.index_of(action_id)
        self._values[s, e] = value

    def td_update(
        self,
        state_idx: int,
        action_idx: int,
        target: float,
        learning_rate: float,
    ) -> float:
        """Apply ``Q += alpha * (target - Q)`` and return the new value."""
        old = self._values[state_idx, action_idx]
        new = old + learning_rate * (target - old)
        self._values[state_idx, action_idx] = new
        self._updates += 1
        return float(new)

    # ------------------------------------------------------------------
    # Greedy lookups
    # ------------------------------------------------------------------

    def best_action(
        self,
        state_id: str,
        allowed_ids: Sequence[str],
        rng: Optional[np.random.Generator] = None,
    ) -> str:
        """Argmax over allowed actions from ``state_id``.

        Ties are broken uniformly at random when ``rng`` is given, else
        by catalog order (deterministic).
        """
        if not allowed_ids:
            raise PlanningError(
                f"no allowed actions from state {state_id!r}"
            )
        s = self.catalog.index_of(state_id)
        indices = np.fromiter(
            (self.catalog.index_of(a) for a in allowed_ids),
            dtype=np.int64,
            count=len(allowed_ids),
        )
        row = self._values[s, indices]
        best = row.max()
        winners = [
            allowed_ids[i] for i in range(len(allowed_ids)) if row[i] >= best
        ]
        if rng is not None and len(winners) > 1:
            return winners[int(rng.integers(len(winners)))]
        return winners[0]

    def action_values(
        self, state_id: str, allowed_ids: Sequence[str]
    ) -> Dict[str, float]:
        """Q-values of the allowed actions from ``state_id``."""
        s = self.catalog.index_of(state_id)
        return {
            a: float(self._values[s, self.catalog.index_of(a)])
            for a in allowed_ids
        }

    # ------------------------------------------------------------------
    # Serialization / transfer support
    # ------------------------------------------------------------------

    def to_entries(self) -> Dict[Tuple[str, str], float]:
        """Sparse dict of the non-zero entries, keyed by item-id pairs.

        Used by transfer learning to re-key values onto another catalog
        and by tests to snapshot learned policies.
        """
        entries: Dict[Tuple[str, str], float] = {}
        ids = self.catalog.item_ids
        rows, cols = np.nonzero(self._values)
        for r, c in zip(rows.tolist(), cols.tolist()):
            entries[(ids[r], ids[c])] = float(self._values[r, c])
        return entries

    @classmethod
    def from_entries(
        cls,
        catalog: Catalog,
        entries: Dict[Tuple[str, str], float],
        strict: bool = False,
    ) -> "QTable":
        """Rebuild a table over ``catalog`` from id-keyed entries.

        Entries whose ids are absent from ``catalog`` are skipped unless
        ``strict`` is True — this permissive behaviour is exactly what
        cross-catalog transfer needs.
        """
        table = cls(catalog)
        skipped = 0
        for (state_id, action_id), value in entries.items():
            if state_id in catalog and action_id in catalog:
                table.set(state_id, action_id, value)
            elif strict:
                missing = state_id if state_id not in catalog else action_id
                raise PlanningError(
                    f"entry references item {missing!r} not in catalog "
                    f"{catalog.name!r}"
                )
            else:
                skipped += 1
        table._skipped_on_load = skipped  # type: ignore[attr-defined]
        return table

    def copy(self) -> "QTable":
        """Deep copy over the same catalog."""
        clone = QTable(self.catalog)
        clone._values = self._values.copy()
        clone._updates = self._updates
        return clone

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"QTable(catalog={self.catalog.name!r}, shape={self.shape}, "
            f"updates={self._updates})"
        )
