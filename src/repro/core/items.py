"""Item data model for the Task Planning Problem.

The paper (Section II-A) represents an item as the quadruple

    m = <type_m, cr_m, pre_m, T_m>

where ``type_m`` is *primary* or *secondary*, ``cr_m`` is a quantifiable
amount counted toward the task requirement (credit hours for courses,
visitation hours for POIs), ``pre_m`` is a set of antecedent items that
must appear earlier in the plan, and ``T_m`` is a Boolean topic/theme
vector.

Prerequisites can be combined with AND ("all antecedents before m") or OR
("any one antecedent before m").  We model the general case as a
conjunction of OR-groups (CNF): ``[{a}, {b, c}]`` means *a AND (b OR c)*.
The paper's pure-AND and pure-OR forms are both expressible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from .exceptions import DataModelError


class ItemType(enum.Enum):
    """Whether an item is required (primary) or optional (secondary).

    In course planning primary = core course and secondary = elective; in
    trip planning primary = must-visit POI and secondary = optional POI.
    """

    PRIMARY = "primary"
    SECONDARY = "secondary"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _freeze_prerequisites(
    groups: Iterable[Iterable[str]],
) -> Tuple[FrozenSet[str], ...]:
    """Normalize prerequisite CNF groups into a canonical immutable form."""
    frozen = []
    for group in groups:
        fs = frozenset(group)
        if not fs:
            raise DataModelError("empty prerequisite OR-group is not allowed")
        frozen.append(fs)
    return tuple(frozen)


@dataclass(frozen=True)
class Prerequisites:
    """A conjunction of OR-groups of item ids (CNF).

    ``groups == ()`` means the item has no prerequisites.  Each group is a
    frozenset of item ids; the group is satisfied when *any one* of its
    members precedes the item by at least ``gap`` positions, and the whole
    prerequisite is satisfied when *every* group is satisfied.
    """

    groups: Tuple[FrozenSet[str], ...] = ()

    @classmethod
    def none(cls) -> "Prerequisites":
        """Prerequisite object for an item with no antecedents."""
        return cls(())

    @classmethod
    def all_of(cls, item_ids: Iterable[str]) -> "Prerequisites":
        """AND-combination: every listed item must precede."""
        return cls(_freeze_prerequisites([{i} for i in item_ids]))

    @classmethod
    def any_of(cls, item_ids: Iterable[str]) -> "Prerequisites":
        """OR-combination: at least one listed item must precede."""
        ids = frozenset(item_ids)
        if not ids:
            return cls.none()
        return cls((ids,))

    @classmethod
    def from_cnf(cls, groups: Iterable[Iterable[str]]) -> "Prerequisites":
        """General form: AND over OR-groups."""
        return cls(_freeze_prerequisites(groups))

    @property
    def is_empty(self) -> bool:
        """True when the item has no antecedents."""
        return not self.groups

    def referenced_ids(self) -> FrozenSet[str]:
        """All item ids mentioned anywhere in the prerequisite tree."""
        out: set = set()
        for group in self.groups:
            out |= group
        return frozenset(out)

    def satisfied_by(
        self, positions: Mapping[str, int], at_position: int, gap: int
    ) -> bool:
        """Check satisfaction against a partial plan.

        Parameters
        ----------
        positions:
            Map item id -> 0-based position of that item in the plan so far.
        at_position:
            0-based position where the dependent item is being placed.
        gap:
            Minimum required distance: an antecedent at position ``p``
            satisfies the requirement iff ``at_position - p >= gap``.
        """
        for group in self.groups:
            if not any(
                member in positions and at_position - positions[member] >= gap
                for member in group
            ):
                return False
        return True

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``(a) AND (b OR c)``."""
        if self.is_empty:
            return "(none)"
        parts = [" OR ".join(sorted(group)) for group in self.groups]
        return " AND ".join(f"({p})" for p in parts)


@dataclass(frozen=True)
class Item:
    """One plannable item (a course or a POI).

    Attributes
    ----------
    item_id:
        Unique identifier within a catalog, e.g. ``"CS 675"``.
    name:
        Display name, e.g. ``"Machine Learning"``.
    item_type:
        :class:`ItemType.PRIMARY` or :class:`ItemType.SECONDARY`.
    credits:
        The quantity ``cr_m``: credit hours for a course, visit duration in
        hours for a POI.
    prerequisites:
        AND/OR antecedent structure; see :class:`Prerequisites`.
    topics:
        The set of topic/theme names covered by the item.  Boolean vectors
        are derived against a catalog-level vocabulary.
    category:
        Optional sub-discipline bucket (used by Univ-2's six-bucket hard
        constraint; ``None`` elsewhere).
    metadata:
        Free-form extras (e.g. geo coordinates and popularity for POIs);
        stored as a tuple of key/value pairs so the dataclass stays
        hashable.
    """

    item_id: str
    name: str
    item_type: ItemType
    credits: float
    prerequisites: Prerequisites = field(default_factory=Prerequisites.none)
    topics: FrozenSet[str] = frozenset()
    category: Optional[str] = None
    metadata: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.item_id:
            raise DataModelError("item_id must be a non-empty string")
        if self.credits <= 0:
            raise DataModelError(
                f"item {self.item_id!r}: credits must be positive, "
                f"got {self.credits}"
            )
        if self.item_id in self.prerequisites.referenced_ids():
            raise DataModelError(
                f"item {self.item_id!r} cannot be its own prerequisite"
            )
        object.__setattr__(self, "topics", frozenset(self.topics))

    @property
    def is_primary(self) -> bool:
        """True for core courses / must-visit POIs."""
        return self.item_type is ItemType.PRIMARY

    @property
    def is_secondary(self) -> bool:
        """True for electives / optional POIs."""
        return self.item_type is ItemType.SECONDARY

    def meta(self, key: str, default: object = None) -> object:
        """Fetch a metadata value by key (``default`` when absent)."""
        for k, v in self.metadata:
            if k == key:
                return v
        return default

    def topic_vector(self, vocabulary: Sequence[str]) -> Tuple[int, ...]:
        """Boolean vector of this item's topics over ``vocabulary``.

        The i-th entry is 1 iff ``vocabulary[i]`` is covered by the item,
        mirroring the paper's ``T^m`` notation.
        """
        return tuple(1 if t in self.topics else 0 for t in vocabulary)

    def with_type(self, item_type: ItemType) -> "Item":
        """Copy of this item with a different primary/secondary type.

        Used when the same underlying course plays different roles in
        different degree programs (e.g. CS 675 is core in DS-CT but an
        elective in M.S. CS).
        """
        return Item(
            item_id=self.item_id,
            name=self.name,
            item_type=item_type,
            credits=self.credits,
            prerequisites=self.prerequisites,
            topics=self.topics,
            category=self.category,
            metadata=self.metadata,
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.item_id} ({self.item_type.value})"


def make_metadata(**kwargs: object) -> Tuple[Tuple[str, object], ...]:
    """Build an :class:`Item` metadata tuple from keyword arguments."""
    return tuple(sorted(kwargs.items()))
