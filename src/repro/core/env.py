"""The deterministic discrete CMDP environment of Section III-A.

States are items (nodes of the complete graph ``G``), actions add one
more item, transitions are deterministic, and episodes are bounded by
the trajectory size ``H``:

* **course mode** — ``H`` is derived from the credit requirement
  (e.g. 30 credits / 3 per course = 10 items); the episode ends after
  exactly ``H`` items,
* **trip mode** — the credit quantity is a *time budget*: the episode
  ends when the itinerary reaches the template length or when no
  remaining POI fits within the remaining visit time.

The environment never hides constraint information from the agent — all
constraint handling flows through the reward (Eq. 2), exactly as in the
paper.  The environment's only hard rules are "no repeated items" and the
episode bound.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from ..obs import get_registry
from .catalog import Catalog
from .config import PlannerConfig
from .constraints import TaskSpec
from .exceptions import PlanningError
from .items import Item
from .plan import Plan, PlanBuilder
from .reward import RewardFunction


class DomainMode(enum.Enum):
    """Whether ``cr`` is a minimum (courses) or a budget (trips)."""

    COURSE = "course"
    TRIP = "trip"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Absolute tolerance for trip-mode budget comparisons.  Visit times are
#: sums of floats, so an item whose cost lands within this band of the
#: remaining budget still counts as affordable.
BUDGET_TOLERANCE = 1e-9


class TPPEnvironment:
    """Episodic environment for one (catalog, task) pair.

    Parameters
    ----------
    catalog:
        The item universe (nodes of ``G``).
    task:
        Hard + soft constraints.
    config:
        Planner configuration (the reward needs epsilon and the weights).
    mode:
        :class:`DomainMode.COURSE` or :class:`DomainMode.TRIP`.
    """

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode = DomainMode.COURSE,
        reward: Optional[RewardFunction] = None,
    ) -> None:
        self.catalog = catalog
        self.task = task
        self.config = config
        self.mode = mode
        # A custom reward (e.g. the feedback-adjusted wrapper) may be
        # injected; it must expose the RewardFunction interface.
        self.reward = reward if reward is not None else RewardFunction(
            task, config
        )
        self._builder: Optional[PlanBuilder] = None

    # ------------------------------------------------------------------
    # Episode lifecycle
    # ------------------------------------------------------------------

    @property
    def horizon(self) -> int:
        """The trajectory size ``H`` (template length = #primary+#secondary)."""
        return self.task.hard.plan_length

    def reset(self, start_item_id: str) -> Item:
        """Begin an episode at ``start_item_id`` and return that item."""
        item = self.catalog[start_item_id]
        self._builder = PlanBuilder(self.catalog)
        self._builder.add(item)
        get_registry().inc("env_episodes_total")
        return item

    @property
    def builder(self) -> PlanBuilder:
        """The live partial plan (raises before :meth:`reset`)."""
        if self._builder is None:
            raise PlanningError("environment not reset; call reset() first")
        return self._builder

    def valid_actions(self) -> Tuple[Item, ...]:
        """Items that may legally extend the current episode.

        Courses: any unvisited item.  Trips: any unvisited item whose
        visit time fits the remaining budget.  When
        ``config.mask_invalid_actions`` is on, items failing the Eq. 3/4
        gates (theta = 0) are additionally excluded — unless that leaves
        nothing, in which case the unmasked set is returned so episodes
        never deadlock.

        With ``config.candidate_top_k`` set (and a reward exposing the
        pruned path) masking runs two-stage: vectorized gate screens
        over the raw candidate indices first, then a top-k-by-reward
        cut of the survivors, without ever materializing the full
        candidate Item tuple — the greedy argmax over the result is
        bit-identical to the unpruned path (see
        ``RewardFunction.mask_actions_pruned_idx``).
        """
        builder = self.builder
        if self.config.mask_invalid_actions:
            top_k = self.config.candidate_top_k
            pruner = getattr(self.reward, "mask_actions_pruned_idx", None)
            if top_k is not None and pruner is not None:
                idx = self.valid_action_indices()
                if idx.size > top_k:
                    return pruner(builder, idx, top_k)
        if self.mode is DomainMode.TRIP:
            remaining = tuple(
                self.catalog.item_at(int(i))
                for i in self._affordable_indices(builder)
            )
        else:
            remaining = builder.remaining_items()
        if self.config.mask_invalid_actions:
            return self.reward.mask_actions(builder, remaining)
        return remaining

    def valid_action_indices(self):
        """Catalog indices of the raw (pre-mask) candidate set.

        The index-space twin of the unmasked :meth:`valid_actions`
        tiers' input — unvisited items, restricted in trip mode to the
        affordable ones — in ascending catalog order, which is exactly
        the order ``remaining_items`` yields.  Used by the pruned
        masking path and the episode-batched learner to avoid
        materializing Item tuples for the whole catalog.
        """
        builder = self.builder
        if self.mode is DomainMode.TRIP:
            return self._affordable_indices(builder)
        return builder.remaining_indices()

    def _affordable_indices(self, builder: PlanBuilder):
        """Unvisited catalog indices whose visit time fits the budget.

        The single trip-mode feasibility rule — shared by
        :meth:`valid_actions` and :meth:`is_done` so the two can never
        disagree about whether any affordable item remains.
        """
        remaining_idx = builder.remaining_indices()
        budget_left = self.task.hard.min_credits - builder.total_credits
        credits = self.catalog.columns.credits[remaining_idx]
        return remaining_idx[credits <= budget_left + BUDGET_TOLERANCE]

    def step(self, item: Item) -> Tuple[float, bool]:
        """Take the action that appends ``item``; return (reward, done)."""
        builder = self.builder
        if builder.contains(item.item_id):
            raise PlanningError(
                f"item {item.item_id!r} already visited this episode"
            )
        obs = get_registry()
        with obs.span("env.step"):
            reward = self.reward(builder, item)
            builder.add(item)
            done = self.is_done()
        obs.inc("env_steps_total")
        if reward == 0.0:
            obs.inc("env_zero_reward_steps_total")
        return reward, done

    def is_done(self) -> bool:
        """Episode termination check (length bound or exhausted budget)."""
        builder = self.builder
        if len(builder) >= self.horizon:
            return True
        if self.mode is DomainMode.TRIP:
            if self._affordable_indices(builder).size == 0:
                return True
        return len(builder) >= len(self.catalog)

    def current_plan(self) -> Plan:
        """Snapshot of the episode so far as an immutable plan."""
        return self.builder.build()
