"""The weighted reward function of Equation 2.

    R(s_i, e_i, s_{i+1}) = theta * [ delta * Sim(s_{i+1}, IT_{i+1})
                                     + beta * weight_{type_m} ]
    theta = r1 * r2                                             (Eq. 5)

where

* ``r1`` (Eq. 3) gates on *topic coverage*: the action must add at least
  ``epsilon`` new topics from ``T_ideal`` to the running coverage set,
* ``r2`` (Eq. 4) gates on the *antecedent gap*: every (AND) / any (OR)
  prerequisite of the added item must already be in the plan at least
  ``gap`` positions earlier — in the trip domain the gap is instantiated
  as "no two consecutive POIs of the same theme",
* ``Sim`` is the interleaving similarity of the plan prefix *after* the
  action against the template ``IT`` (Eq. 6/7, average or minimum
  aggregation),
* ``weight_{type_m}`` is ``w1`` for primary and ``w2`` for secondary
  items (``w1 > w2``), generalized to per-category weights w1..w6 for the
  Univ-2 six-sub-discipline requirement.

This module exposes both the individual components (so tests and the
EDA baseline can reuse them) and a :class:`RewardFunction` that binds a
catalog + task + config into a single callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import PlannerConfig
from .constraints import TaskSpec
from .items import Item
from .plan import PlanBuilder
from .similarity import aggregate_similarity
from .validation import haversine_km


@dataclass(frozen=True)
class RewardBreakdown:
    """The components of one reward evaluation, for diagnostics.

    ``total`` is the Equation-2 value; the other fields expose the gates
    and terms so experiments can report *why* an action scored zero.
    """

    r1_coverage: int
    r2_gap: int
    similarity: float
    type_weight: float
    total: float

    @property
    def theta(self) -> int:
        """The multiplicative gate ``theta = r1 * r2`` (Eq. 5)."""
        return self.r1_coverage * self.r2_gap


class RewardFunction:
    """Equation 2 bound to a task specification and planner config.

    Parameters
    ----------
    task:
        The :class:`TaskSpec` with hard and soft constraints.
    config:
        The :class:`PlannerConfig` carrying epsilon, delta/beta, type
        weights, and the similarity aggregation mode.
    """

    def __init__(self, task: TaskSpec, config: PlannerConfig) -> None:
        self.task = task
        self.config = config
        self._coverage_needed = config.coverage_count_threshold(
            len(task.soft.ideal_topics)
        )
        self._category_weights = config.weights.category_weight_map

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------

    def coverage_gate(self, builder: PlanBuilder, item: Item) -> int:
        """``r1`` (Eq. 3): does the action add enough new ideal topics?"""
        gained = builder.new_topics(item) & self.task.soft.ideal_topics
        return 1 if len(gained) >= self._coverage_needed else 0

    def gap_gate(self, builder: PlanBuilder, item: Item) -> int:
        """``r2`` (Eq. 4): antecedent/prerequisite gap satisfaction.

        Items without antecedents trivially pass.  In trip mode
        (``theme_adjacency_gap``) the gate additionally rejects an item
        sharing a theme with the immediately preceding POI, which is how
        the paper instantiates the trip-domain ``gap``.
        """
        if self.task.hard.theme_adjacency_gap:
            last = builder.last_item
            if last is not None and last.topics & item.topics:
                return 0
        if item.prerequisites.is_empty:
            return 1
        position = len(builder)  # the item lands at this 0-based position
        satisfied = item.prerequisites.satisfied_by(
            builder.positions, position, self.task.hard.gap
        )
        return 1 if satisfied else 0

    def interleaving_similarity(
        self, builder: PlanBuilder, item: Item
    ) -> float:
        """Aggregated Eq. 6/7 similarity of the prefix including ``item``."""
        prefix = builder.type_sequence() + (item.item_type,)
        if len(prefix) > self.task.soft.template.length:
            # Beyond the template horizon (possible in trip mode before
            # the time budget bites) template adherence is moot.
            return 0.0
        return aggregate_similarity(
            prefix, self.task.soft.template, self.config.similarity
        )

    def type_weight(self, item: Item) -> float:
        """``weight_{type_m}``: category weight when configured, else w1/w2."""
        if self._category_weights and item.category is not None:
            weight = self._category_weights.get(item.category)
            if weight is not None:
                return weight
        if item.is_primary:
            return self.config.weights.w_primary
        return self.config.weights.w_secondary

    def feasibility_gate(self, builder: PlanBuilder, item: Item) -> bool:
        """Lookahead mask: can the plan still satisfy P_hard after ``item``?

        Not part of the Eq. 2 value — the paper handles these constraints
        through the weighted reward and Theorem 1's argument — but used
        as an *action mask* alongside r1/r2 so the greedy traversal never
        paints itself into a corner on the primary split, the Univ-2
        per-category credit minima, or the trip distance threshold.
        """
        hard = self.task.hard
        slots_after = hard.plan_length - (len(builder) + 1)
        if slots_after < 0:
            return False

        # Primary split: enough primary slots and unused primaries left.
        primaries_have = sum(
            1 for chosen in builder.items if chosen.is_primary
        ) + (1 if item.is_primary else 0)
        primaries_short = max(0, hard.num_primary - primaries_have)
        if primaries_short > slots_after:
            return False
        # Future positions that matter for reachability: a pooled item
        # can still enter the plan only if each of its prerequisite
        # groups has a member already placed (counting the candidate)
        # early enough to satisfy the gap by the final slot.
        future_positions = dict(builder.positions)
        future_positions[item.item_id] = len(builder)
        last_slot = hard.plan_length - 1
        unused = [
            other
            for other in builder.remaining_items()
            if other.item_id != item.item_id
            and self._reachable(other, future_positions, last_slot)
        ]
        unused_primaries = sum(1 for other in unused if other.is_primary)
        if primaries_short > unused_primaries:
            return False

        if not self._joint_feasible(
            builder, item, unused, slots_after, primaries_short
        ):
            return False
        return self._distance_feasible(builder, item)

    def _reachable(self, item: Item, positions, last_slot: int) -> bool:
        """Could ``item`` still legally enter the plan by the final slot?

        Conservative filter for feasibility pools: an item with an
        unsatisfied prerequisite group whose members are all absent from
        the (projected) plan cannot be scheduled any more.  Items whose
        prerequisites might *themselves* still be added later are
        counted as unreachable — a stricter gate only makes validity
        more robust.
        """
        if item.prerequisites.is_empty:
            return True
        return item.prerequisites.satisfied_by(
            positions, last_slot, self.task.hard.gap
        )

    def _joint_feasible(
        self,
        builder: PlanBuilder,
        item: Item,
        unused,
        slots_after: int,
        primaries_short: int,
    ) -> bool:
        """Category minima and the primary quota, checked *jointly*.

        The two constraints interact: when the remaining slots are all
        forced to be primary, a category whose unused pool is all
        secondary can no longer be filled.  Categories partition items,
        so a greedy assignment that prefers primaries inside each
        category's demand is exact.
        """
        minima = self.task.hard.category_credit_map
        if not minima:
            return True
        earned: Dict[str, float] = {}
        for chosen in builder.items:
            if chosen.category is not None:
                earned[chosen.category] = (
                    earned.get(chosen.category, 0.0) + chosen.credits
                )
        if item.category is not None:
            earned[item.category] = (
                earned.get(item.category, 0.0) + item.credits
            )

        slots_used = 0
        primaries_covered = 0
        for category, minimum in minima.items():
            shortfall = minimum - earned.get(category, 0.0)
            if shortfall <= 1e-9:
                continue
            pool = [o for o in unused if o.category == category]
            if not pool:
                return False
            per_item = min(o.credits for o in pool)
            needed = int(-(-shortfall // per_item))  # ceil division
            if needed > len(pool):
                return False
            slots_used += needed
            # Prefer primaries inside the demand: they double-count
            # toward the primary quota.
            pool_primaries = sum(1 for o in pool if o.is_primary)
            primaries_covered += min(needed, pool_primaries)

        if slots_used > slots_after:
            return False
        primaries_left = max(0, primaries_short - primaries_covered)
        free_slots = slots_after - slots_used
        if primaries_left > free_slots:
            return False
        unused_primaries = sum(1 for o in unused if o.is_primary)
        return primaries_left <= unused_primaries

    def _distance_feasible(self, builder: PlanBuilder, item: Item) -> bool:
        """Trip distance budget not blown by the leg to ``item``."""
        max_distance = self.task.hard.max_distance
        if max_distance is None or not builder.items:
            return True
        coords = []
        for chosen in list(builder.items) + [item]:
            lat, lon = chosen.meta("lat"), chosen.meta("lon")
            if lat is None or lon is None:
                return True  # no geo data: nothing to enforce
            coords.append((float(lat), float(lon)))
        total = sum(
            haversine_km(a[0], a[1], b[0], b[1])
            for a, b in zip(coords, coords[1:])
        )
        return total <= max_distance + 1e-9

    def mask_actions(self, builder: PlanBuilder, candidates) -> tuple:
        """Tiered action masking used by the environment and recommender.

        Hard-constraint feasibility dominates the (soft) topic-coverage
        gate: the tiers are, in preference order,

        1. r1 AND r2 AND feasible,
        2. r2 AND feasible          (sacrifice coverage, keep P_hard),
        3. r1 AND r2,
        4. r2,
        5. everything               (episodes never deadlock).
        """
        candidates = tuple(candidates)
        gap_ok = tuple(
            item for item in candidates if self.gap_gate(builder, item)
        )
        feasible = tuple(
            item for item in gap_ok if self.feasibility_gate(builder, item)
        )
        for tier in (feasible, gap_ok):
            covered = tuple(
                item for item in tier if self.coverage_gate(builder, item)
            )
            if covered:
                return covered
            if tier:
                return tier
        return candidates

    # ------------------------------------------------------------------
    # Equation 2
    # ------------------------------------------------------------------

    def breakdown(self, builder: PlanBuilder, item: Item) -> RewardBreakdown:
        """Full component breakdown for adding ``item`` to ``builder``."""
        r1 = self.coverage_gate(builder, item)
        r2 = self.gap_gate(builder, item)
        theta = r1 * r2
        if theta == 0:
            # Short-circuit: the gated total is zero regardless of the
            # soft terms; still compute them lazily only when gated in.
            return RewardBreakdown(
                r1_coverage=r1,
                r2_gap=r2,
                similarity=0.0,
                type_weight=self.type_weight(item),
                total=0.0,
            )
        sim = self.interleaving_similarity(builder, item)
        weight = self.type_weight(item)
        total = theta * (
            self.config.weights.delta * sim
            + self.config.weights.beta * weight
        )
        return RewardBreakdown(
            r1_coverage=r1,
            r2_gap=r2,
            similarity=sim,
            type_weight=weight,
            total=total,
        )

    def __call__(self, builder: PlanBuilder, item: Item) -> float:
        """Equation-2 reward for taking the action that adds ``item``."""
        return self.breakdown(builder, item).total

    def best_possible(self) -> float:
        """Upper bound of a single-step reward (for normalization).

        With theta = 1, similarity <= template length (zeta and the match
        count are each at most k, so Eq. 6 is bounded by k), and weight
        <= max type/category weight.
        """
        weights = [self.config.weights.w_primary, self.config.weights.w_secondary]
        weights.extend(self._category_weights.values())
        return (
            self.config.weights.delta * self.task.soft.template.length
            + self.config.weights.beta * max(weights)
        )
