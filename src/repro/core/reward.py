"""The weighted reward function of Equation 2.

    R(s_i, e_i, s_{i+1}) = theta * [ delta * Sim(s_{i+1}, IT_{i+1})
                                     + beta * weight_{type_m} ]
    theta = r1 * r2                                             (Eq. 5)

where

* ``r1`` (Eq. 3) gates on *topic coverage*: the action must add at least
  ``epsilon`` new topics from ``T_ideal`` to the running coverage set,
* ``r2`` (Eq. 4) gates on the *antecedent gap*: every (AND) / any (OR)
  prerequisite of the added item must already be in the plan at least
  ``gap`` positions earlier — in the trip domain the gap is instantiated
  as "no two consecutive POIs of the same theme",
* ``Sim`` is the interleaving similarity of the plan prefix *after* the
  action against the template ``IT`` (Eq. 6/7, average or minimum
  aggregation),
* ``weight_{type_m}`` is ``w1`` for primary and ``w2`` for secondary
  items (``w1 > w2``), generalized to per-category weights w1..w6 for the
  Univ-2 six-sub-discipline requirement.

This module exposes both the individual components (so tests and the
EDA baseline can reuse them) and a :class:`RewardFunction` that binds a
catalog + task + config into a single callable.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog
from .config import PlannerConfig
from .constraints import TaskSpec
from .items import Item
from .plan import PlanBuilder
from .similarity import aggregate_similarity
from .validation import haversine_km


@dataclass(frozen=True)
class RewardBreakdown:
    """The components of one reward evaluation, for diagnostics.

    ``total`` is the Equation-2 value; the other fields expose the gates
    and terms so experiments can report *why* an action scored zero.
    """

    r1_coverage: int
    r2_gap: int
    similarity: float
    type_weight: float
    total: float

    @property
    def theta(self) -> int:
        """The multiplicative gate ``theta = r1 * r2`` (Eq. 5)."""
        return self.r1_coverage * self.r2_gap


class _CatalogView:
    """Task-specific vectorized columns over one catalog.

    Combines the catalog's generic :class:`~repro.core.catalog.CatalogColumns`
    with everything the batch reward derives from the *task/config* pair:
    the ideal-topic incidence submatrix, the per-item type/category
    weight vector, and the indices of prerequisite-carrying items.
    Built once per (reward, catalog) pair and cached.
    """

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        category_weights: Dict[str, float],
    ) -> None:
        cols = catalog.columns
        self.cols = cols

        ideal = task.soft.ideal_topics
        ideal_cols = sorted(
            cols.topic_index[t] for t in ideal if t in cols.topic_index
        )
        self.ideal_matrix = cols.topic_matrix[:, ideal_cols]
        # topic -> position inside the ideal submatrix, for the running
        # covered-ideal vector.
        vocabulary_positions = {
            col: pos for pos, col in enumerate(ideal_cols)
        }
        self.ideal_positions: Dict[str, int] = {
            topic: vocabulary_positions[col]
            for topic, col in cols.topic_index.items()
            if col in vocabulary_positions
        }

        weights = np.where(
            cols.primary_mask,
            config.weights.w_primary,
            config.weights.w_secondary,
        )
        if category_weights:
            for code, category in enumerate(cols.categories):
                weight = category_weights.get(category)
                if weight is not None:
                    weights[cols.category_codes == code] = weight
        self.item_weights = weights
        # Flattened prerequisite CNF (built lazily on first batched gap
        # or reachability evaluation; None until then).
        self._prereq_arrays: Optional[Tuple] = None
        self._catalog_ref = weakref.ref(catalog)

    def _build_prereq_arrays(self):
        """Flatten every item's CNF groups into reduceat-ready arrays.

        Members are tokenized rather than index-mapped because
        prerequisite edges may reference ids outside the catalog
        (out-of-program antecedents) and plan positions may contain
        foreign prefix items — both participate in gap checks by id, not
        by catalog index.
        """
        catalog = self._catalog_ref()
        carriers: List[int] = []
        group_counts: List[int] = []
        item_group_starts: List[int] = []
        group_starts: List[int] = []
        member_tokens: List[int] = []
        token_index: Dict[str, int] = {}
        for idx, item in enumerate(catalog):
            groups = item.prerequisites.groups
            if not groups:
                continue
            carriers.append(idx)
            item_group_starts.append(len(group_starts))
            group_counts.append(len(groups))
            for group in groups:
                group_starts.append(len(member_tokens))
                for member in sorted(group):
                    token = token_index.setdefault(member, len(token_index))
                    member_tokens.append(token)
        self._prereq_arrays = (
            np.asarray(carriers, dtype=np.int64),
            np.asarray(group_counts, dtype=np.int64),
            np.asarray(item_group_starts, dtype=np.int64),
            np.asarray(group_starts, dtype=np.int64),
            np.asarray(member_tokens, dtype=np.int64),
            token_index,
        )
        return self._prereq_arrays

    def prereq_satisfied(
        self, positions: Dict[str, int], at_position: int, gap: int
    ) -> np.ndarray:
        """Vectorized ``Prerequisites.satisfied_by`` over the whole catalog.

        Returns a boolean vector per catalog index: True where the item
        has no antecedents or every CNF group holds a member placed at
        least ``gap`` positions before ``at_position``.  Exactly the
        scalar semantics — a group member counts iff it is in
        ``positions`` (foreign prefix items included) with
        ``at_position - position >= gap``.
        """
        arrays = self._prereq_arrays
        if arrays is None:
            arrays = self._build_prereq_arrays()
        (
            carriers,
            group_counts,
            item_group_starts,
            group_starts,
            member_tokens,
            token_index,
        ) = arrays
        out = np.ones(len(self.cols.primary_mask), dtype=bool)
        if carriers.size == 0:
            return out
        token_pos = np.full(len(token_index), -1, dtype=np.int64)
        for item_id, position in positions.items():
            token = token_index.get(item_id)
            if token is not None:
                token_pos[token] = position
        member_pos = token_pos[member_tokens]
        member_ok = (member_pos >= 0) & (at_position - member_pos >= gap)
        group_sat = np.add.reduceat(member_ok, group_starts) > 0
        sat_groups = np.add.reduceat(
            group_sat.astype(np.int64), item_group_starts
        )
        out[carriers] = sat_groups == group_counts
        return out

    def covered_ideal(self, topics) -> np.ndarray:
        """Boolean vector over the ideal columns covered by ``topics``."""
        covered = np.zeros(self.ideal_matrix.shape[1], dtype=bool)
        positions = self.ideal_positions
        for topic in topics:
            pos = positions.get(topic)
            if pos is not None:
                covered[pos] = True
        return covered


class _CategoryPoolStats:
    """Per-category aggregates of a feasibility pool.

    Carries exactly what `_joint_feasible` needs — count, primary count,
    and the two smallest distinct credit values (with multiplicity of
    the smallest) so one item's exclusion can be applied in O(1) without
    rebuilding the pool.
    """

    __slots__ = ("count", "primaries", "min1", "min1_count", "min2")

    def __init__(self) -> None:
        self.count = 0
        self.primaries = 0
        self.min1 = float("inf")
        self.min1_count = 0
        self.min2 = float("inf")

    def add(self, item: Item) -> None:
        self.count += 1
        if item.is_primary:
            self.primaries += 1
        credits = item.credits
        if credits < self.min1:
            self.min2 = self.min1
            self.min1 = credits
            self.min1_count = 1
        elif credits == self.min1:
            self.min1_count += 1
        elif credits < self.min2:
            self.min2 = credits

    def min_without(self, credits: float) -> float:
        """Smallest credit value if one item worth ``credits`` left."""
        if credits == self.min1 and self.min1_count == 1:
            return self.min2
        return self.min1


class _FeasibilityContext:
    """One step's feasibility pool, checkable per candidate in O(1).

    Produced by :meth:`RewardFunction._feasibility_context`;
    :meth:`check` reproduces :meth:`RewardFunction.feasibility_gate`
    exactly (primary split, joint category minima, distance budget)
    against the shared aggregates instead of a per-candidate pool
    rebuild.
    """

    __slots__ = (
        "reward",
        "index_map",
        "slots_after",
        "base_primaries",
        "reachable",
        "reachable_primaries",
        "category_stats",
        "fixers",
        "base_earned",
        "distance_applies",
        "base_distance",
        "last_coords",
    )

    def __init__(
        self,
        reward: "RewardFunction",
        index_map: Dict[str, int],
        slots_after: int,
        base_primaries: int,
        reachable: np.ndarray,
        reachable_primaries: int,
        category_stats: Dict[str, _CategoryPoolStats],
        fixers: Dict[str, List[Item]],
        base_earned: Dict[str, float],
        distance_applies: bool,
        base_distance: float,
        last_coords: Optional[Tuple[float, float]],
    ) -> None:
        self.reward = reward
        self.index_map = index_map
        self.slots_after = slots_after
        self.base_primaries = base_primaries
        self.reachable = reachable
        self.reachable_primaries = reachable_primaries
        self.category_stats = category_stats
        self.fixers = fixers
        self.base_earned = base_earned
        self.distance_applies = distance_applies
        self.base_distance = base_distance
        self.last_coords = last_coords

    def check(self, cand: Item) -> bool:
        """Would the plan stay completable after taking ``cand``?"""
        hard = self.reward.task.hard
        primaries_have = self.base_primaries + (1 if cand.is_primary else 0)
        primaries_short = max(0, hard.num_primary - primaries_have)
        if primaries_short > self.slots_after:
            return False
        fixed = self.fixers.get(cand.item_id, ())
        idx = self.index_map.get(cand.item_id)
        cand_reachable = idx is not None and bool(self.reachable[idx])
        unused_primaries = (
            self.reachable_primaries
            - (1 if cand.is_primary and cand_reachable else 0)
            + sum(1 for other in fixed if other.is_primary)
        )
        if primaries_short > unused_primaries:
            return False
        if hard.category_credit_map and not self.reward._joint_feasible_pooled(
            cand,
            self.category_stats,
            self.base_earned,
            fixed,
            cand_reachable,
            self.slots_after,
            primaries_short,
            unused_primaries,
        ):
            return False
        if self.distance_applies:
            lat, lon = cand.meta("lat"), cand.meta("lon")
            if lat is not None and lon is not None:
                assert self.last_coords is not None
                total = self.base_distance + haversine_km(
                    self.last_coords[0],
                    self.last_coords[1],
                    float(lat),  # type: ignore[arg-type]
                    float(lon),  # type: ignore[arg-type]
                )
                if total > hard.max_distance + 1e-9:
                    return False
        return True


class RewardFunction:
    """Equation 2 bound to a task specification and planner config.

    Parameters
    ----------
    task:
        The :class:`TaskSpec` with hard and soft constraints.
    config:
        The :class:`PlannerConfig` carrying epsilon, delta/beta, type
        weights, and the similarity aggregation mode.
    """

    def __init__(self, task: TaskSpec, config: PlannerConfig) -> None:
        self.task = task
        self.config = config
        self._coverage_needed = config.coverage_count_threshold(
            len(task.soft.ideal_topics)
        )
        self._category_weights = config.weights.category_weight_map
        # Per-catalog vectorized columns; weak keys so subset/transfer
        # catalogs do not pile up for the lifetime of the reward.
        self._views: "weakref.WeakKeyDictionary[Catalog, _CatalogView]" = (
            weakref.WeakKeyDictionary()
        )

    def _view(self, catalog: Catalog) -> _CatalogView:
        view = self._views.get(catalog)
        if view is None:
            view = _CatalogView(
                catalog, self.task, self.config, self._category_weights
            )
            self._views[catalog] = view
        return view

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------

    def coverage_gate(self, builder: PlanBuilder, item: Item) -> int:
        """``r1`` (Eq. 3): does the action add enough new ideal topics?"""
        gained = builder.new_topics(item) & self.task.soft.ideal_topics
        return 1 if len(gained) >= self._coverage_needed else 0

    def gap_gate(self, builder: PlanBuilder, item: Item) -> int:
        """``r2`` (Eq. 4): antecedent/prerequisite gap satisfaction.

        Items without antecedents trivially pass.  In trip mode
        (``theme_adjacency_gap``) the gate additionally rejects an item
        sharing a theme with the immediately preceding POI, which is how
        the paper instantiates the trip-domain ``gap``.
        """
        if self.task.hard.theme_adjacency_gap:
            last = builder.last_item
            if last is not None and last.topics & item.topics:
                return 0
        if item.prerequisites.is_empty:
            return 1
        position = len(builder)  # the item lands at this 0-based position
        satisfied = item.prerequisites.satisfied_by(
            builder.positions, position, self.task.hard.gap
        )
        return 1 if satisfied else 0

    def interleaving_similarity(
        self, builder: PlanBuilder, item: Item
    ) -> float:
        """Aggregated Eq. 6/7 similarity of the prefix including ``item``."""
        prefix = builder.type_sequence() + (item.item_type,)
        if len(prefix) > self.task.soft.template.length:
            # Beyond the template horizon (possible in trip mode before
            # the time budget bites) template adherence is moot.
            return 0.0
        return aggregate_similarity(
            prefix, self.task.soft.template, self.config.similarity
        )

    def type_weight(self, item: Item) -> float:
        """``weight_{type_m}``: category weight when configured, else w1/w2."""
        if self._category_weights and item.category is not None:
            weight = self._category_weights.get(item.category)
            if weight is not None:
                return weight
        if item.is_primary:
            return self.config.weights.w_primary
        return self.config.weights.w_secondary

    def feasibility_gate(self, builder: PlanBuilder, item: Item) -> bool:
        """Lookahead mask: can the plan still satisfy P_hard after ``item``?

        Not part of the Eq. 2 value — the paper handles these constraints
        through the weighted reward and Theorem 1's argument — but used
        as an *action mask* alongside r1/r2 so the greedy traversal never
        paints itself into a corner on the primary split, the Univ-2
        per-category credit minima, or the trip distance threshold.
        """
        hard = self.task.hard
        slots_after = hard.plan_length - (len(builder) + 1)
        if slots_after < 0:
            return False

        # Primary split: enough primary slots and unused primaries left.
        primaries_have = sum(
            1 for chosen in builder.items if chosen.is_primary
        ) + (1 if item.is_primary else 0)
        primaries_short = max(0, hard.num_primary - primaries_have)
        if primaries_short > slots_after:
            return False
        # Future positions that matter for reachability: a pooled item
        # can still enter the plan only if each of its prerequisite
        # groups has a member already placed (counting the candidate)
        # early enough to satisfy the gap by the final slot.
        future_positions = dict(builder.positions)
        future_positions[item.item_id] = len(builder)
        last_slot = hard.plan_length - 1
        unused = [
            other
            for other in builder.remaining_items()
            if other.item_id != item.item_id
            and self._reachable(other, future_positions, last_slot)
        ]
        unused_primaries = sum(1 for other in unused if other.is_primary)
        if primaries_short > unused_primaries:
            return False

        if not self._joint_feasible(
            builder, item, unused, slots_after, primaries_short
        ):
            return False
        return self._distance_feasible(builder, item)

    def _reachable(self, item: Item, positions, last_slot: int) -> bool:
        """Could ``item`` still legally enter the plan by the final slot?

        Conservative filter for feasibility pools: an item with an
        unsatisfied prerequisite group whose members are all absent from
        the (projected) plan cannot be scheduled any more.  Items whose
        prerequisites might *themselves* still be added later are
        counted as unreachable — a stricter gate only makes validity
        more robust.
        """
        if item.prerequisites.is_empty:
            return True
        return item.prerequisites.satisfied_by(
            positions, last_slot, self.task.hard.gap
        )

    def _joint_feasible(
        self,
        builder: PlanBuilder,
        item: Item,
        unused,
        slots_after: int,
        primaries_short: int,
    ) -> bool:
        """Category minima and the primary quota, checked *jointly*.

        The two constraints interact: when the remaining slots are all
        forced to be primary, a category whose unused pool is all
        secondary can no longer be filled.  Categories partition items,
        so a greedy assignment that prefers primaries inside each
        category's demand is exact.
        """
        minima = self.task.hard.category_credit_map
        if not minima:
            return True
        earned: Dict[str, float] = {}
        for chosen in builder.items:
            if chosen.category is not None:
                earned[chosen.category] = (
                    earned.get(chosen.category, 0.0) + chosen.credits
                )
        if item.category is not None:
            earned[item.category] = (
                earned.get(item.category, 0.0) + item.credits
            )

        slots_used = 0
        primaries_covered = 0
        for category, minimum in minima.items():
            shortfall = minimum - earned.get(category, 0.0)
            if shortfall <= 1e-9:
                continue
            pool = [o for o in unused if o.category == category]
            if not pool:
                return False
            per_item = min(o.credits for o in pool)
            needed = int(-(-shortfall // per_item))  # ceil division
            if needed > len(pool):
                return False
            slots_used += needed
            # Prefer primaries inside the demand: they double-count
            # toward the primary quota.
            pool_primaries = sum(1 for o in pool if o.is_primary)
            primaries_covered += min(needed, pool_primaries)

        if slots_used > slots_after:
            return False
        primaries_left = max(0, primaries_short - primaries_covered)
        free_slots = slots_after - slots_used
        if primaries_left > free_slots:
            return False
        unused_primaries = sum(1 for o in unused if o.is_primary)
        return primaries_left <= unused_primaries

    def _distance_feasible(self, builder: PlanBuilder, item: Item) -> bool:
        """Trip distance budget not blown by the leg to ``item``."""
        max_distance = self.task.hard.max_distance
        if max_distance is None or not builder.items:
            return True
        coords = []
        for chosen in list(builder.items) + [item]:
            lat, lon = chosen.meta("lat"), chosen.meta("lon")
            if lat is None or lon is None:
                return True  # no geo data: nothing to enforce
            coords.append((float(lat), float(lon)))
        total = sum(
            haversine_km(a[0], a[1], b[0], b[1])
            for a, b in zip(coords, coords[1:])
        )
        return total <= max_distance + 1e-9

    def mask_actions(self, builder: PlanBuilder, candidates) -> tuple:
        """Tiered action masking used by the environment and recommender.

        Hard-constraint feasibility dominates the (soft) topic-coverage
        gate: the tiers are, in preference order,

        1. r1 AND r2 AND feasible,
        2. r2 AND feasible          (sacrifice coverage, keep P_hard),
        3. r1 AND r2,
        4. r2,
        5. everything               (episodes never deadlock).

        All three gates are evaluated batched (one pass of shared
        per-step state instead of per-candidate rescans); the tier
        semantics and candidate ordering are unchanged.
        """
        candidates = tuple(candidates)
        if not candidates:
            return candidates
        cand_idx = self._candidate_indices(builder.catalog, candidates)
        if cand_idx is None:
            return self._mask_actions_scalar(builder, candidates)

        view = self._view(builder.catalog)
        gap_ok_mask = self._gap_mask(builder, view, candidates, cand_idx)
        gap_ok = tuple(
            item for item, ok in zip(candidates, gap_ok_mask.tolist()) if ok
        )
        feasible_mask = self.feasible_mask(builder, gap_ok)
        feasible = tuple(
            item for item, ok in zip(gap_ok, feasible_mask.tolist()) if ok
        )
        covered_mask = self._coverage_mask(builder, view, cand_idx)
        covered_by_id = {
            item.item_id: ok
            for item, ok in zip(candidates, covered_mask.tolist())
        }
        for tier in (feasible, gap_ok):
            covered = tuple(
                item for item in tier if covered_by_id[item.item_id]
            )
            if covered:
                return covered
            if tier:
                return tier
        return candidates

    def _mask_actions_scalar(self, builder: PlanBuilder, candidates) -> tuple:
        """Per-item fallback for candidates outside the catalog index."""
        gap_ok = tuple(
            item for item in candidates if self.gap_gate(builder, item)
        )
        feasible = tuple(
            item for item in gap_ok if self.feasibility_gate(builder, item)
        )
        for tier in (feasible, gap_ok):
            covered = tuple(
                item for item in tier if self.coverage_gate(builder, item)
            )
            if covered:
                return covered
            if tier:
                return tier
        return candidates

    # ------------------------------------------------------------------
    # Batched evaluation (one step, all candidates)
    # ------------------------------------------------------------------

    @staticmethod
    def _candidate_indices(
        catalog: Catalog, candidates: Sequence[Item]
    ) -> Optional[np.ndarray]:
        """Catalog indices of the candidates, or None when any is foreign."""
        index_map = catalog.index_map
        out = np.empty(len(candidates), dtype=np.int64)
        for j, item in enumerate(candidates):
            idx = index_map.get(item.item_id)
            if idx is None:
                return None
            out[j] = idx
        return out

    def _coverage_mask(
        self,
        builder: PlanBuilder,
        view: _CatalogView,
        cand_idx: np.ndarray,
    ) -> np.ndarray:
        """Vectorized ``r1`` (Eq. 3) over candidate indices."""
        covered = view.covered_ideal(builder.covered_topics)
        gained = (view.ideal_matrix[cand_idx] & ~covered).sum(axis=1)
        return gained >= self._coverage_needed

    def _gap_mask(
        self,
        builder: PlanBuilder,
        view: _CatalogView,
        candidates: Sequence[Item],
        cand_idx: np.ndarray,
    ) -> np.ndarray:
        """Vectorized ``r2`` (Eq. 4) over candidates.

        The theme-adjacency check is a single matrix row intersection;
        prerequisite CNF checks run only for the (typically few)
        candidates that actually carry antecedents, against one shared
        positions snapshot.
        """
        ok = np.ones(len(candidates), dtype=bool)
        cols = view.cols
        if self.task.hard.theme_adjacency_gap:
            last = builder.last_item
            if last is not None:
                last_idx = builder.catalog.index_map.get(last.item_id)
                if last_idx is not None:
                    overlap = (
                        cols.topic_matrix[cand_idx]
                        & cols.topic_matrix[last_idx]
                    ).any(axis=1)
                else:
                    overlap = np.fromiter(
                        (
                            bool(last.topics & item.topics)
                            for item in candidates
                        ),
                        dtype=bool,
                        count=len(candidates),
                    )
                ok &= ~overlap
        if cols.has_prereqs[cand_idx].any():
            positions = builder.positions
            at_position = len(builder)
            gap = self.task.hard.gap
            for j, item in enumerate(candidates):
                if ok[j] and not item.prerequisites.is_empty:
                    ok[j] = item.prerequisites.satisfied_by(
                        positions, at_position, gap
                    )
        return ok

    def _gap_mask_idx(
        self,
        builder: PlanBuilder,
        view: _CatalogView,
        cand_idx: np.ndarray,
    ) -> np.ndarray:
        """``r2`` (Eq. 4) over catalog indices, fully vectorized.

        Same semantics as :meth:`_gap_mask` but never materializes Item
        objects: the prerequisite CNF is evaluated in one
        :meth:`_CatalogView.prereq_satisfied` pass instead of a Python
        loop, which is what lets the pruned/multi-episode paths screen
        whole catalogs.
        """
        ok = np.ones(cand_idx.size, dtype=bool)
        cols = view.cols
        if self.task.hard.theme_adjacency_gap:
            last = builder.last_item
            if last is not None:
                last_idx = builder.catalog.index_map.get(last.item_id)
                if last_idx is not None:
                    overlap = (
                        cols.topic_matrix[cand_idx]
                        & cols.topic_matrix[last_idx]
                    ).any(axis=1)
                else:
                    catalog = builder.catalog
                    overlap = np.fromiter(
                        (
                            bool(last.topics & catalog.item_at(int(i)).topics)
                            for i in cand_idx
                        ),
                        dtype=bool,
                        count=cand_idx.size,
                    )
                ok &= ~overlap
        if cols.has_prereqs[cand_idx].any():
            satisfied = view.prereq_satisfied(
                builder.positions, len(builder), self.task.hard.gap
            )
            ok &= satisfied[cand_idx]
        return ok

    def mask_actions_pruned_idx(
        self, builder: PlanBuilder, cand_idx: np.ndarray, top_k: int
    ) -> tuple:
        """Two-stage tiered masking over catalog indices with top-k pruning.

        Stage 1 runs the cheap vectorized gates (Eq. 3 coverage, Eq. 4
        gap) over every candidate index.  Stage 2 sorts the surviving
        pool by its *exact* reward — inside the covered-and-gap-ok tier
        ``theta == 1``, so ``delta*sim + beta*weight`` is the Eq. 2
        value itself, not merely an upper bound — and walks it in
        descending order, feasibility-checking lazily against one shared
        :class:`_FeasibilityContext`, keeping the first ``top_k``
        feasible candidates *plus every tie at the boundary value*.

        Soundness: the unpruned path's winning tier is exactly the
        feasible members of this pool (tier 1 of :meth:`mask_actions`),
        and its argmax winner set is the feasible candidates attaining
        the maximal reward — all of which this scan keeps (they sort
        first).  Returning the kept indices in ascending catalog order
        preserves the relative candidate order, so the downstream argmax
        — including the tie-break RNG draw — is bit-identical to the
        unpruned path.  Whenever tier 1 would be empty (no covered
        gap-ok candidate, or none of them feasible) the method falls
        back to the full :meth:`mask_actions` tier cascade.
        """
        catalog = builder.catalog
        view = self._view(catalog)
        covered = self._coverage_mask(builder, view, cand_idx)
        gap_ok = self._gap_mask_idx(builder, view, cand_idx)
        pool = cand_idx[covered & gap_ok]
        if pool.size == 0:
            return self._mask_actions_full_fallback(builder, cand_idx)
        ctx = self._feasibility_context(builder)
        if ctx is None:
            return self._mask_actions_full_fallback(builder, cand_idx)

        template = self.task.soft.template
        if len(builder) + 1 > template.length:
            sims = np.zeros(pool.size, dtype=np.float64)
        else:
            state = builder.similarity_state(template, self.config.similarity)
            sim_primary, sim_secondary = state.peek_types()
            sims = np.where(
                view.cols.primary_mask[pool], sim_primary, sim_secondary
            )
        rewards = (
            self.config.weights.delta * sims
            + self.config.weights.beta * view.item_weights[pool]
        )
        order = np.argsort(-rewards, kind="stable")
        kept: List[int] = []
        kept_min = float("inf")
        for rank in order.tolist():
            value = float(rewards[rank])
            if len(kept) >= top_k and value < kept_min:
                break
            index = int(pool[rank])
            if ctx.check(catalog.item_at(index)):
                kept.append(index)
                kept_min = value
        if not kept:
            return self._mask_actions_full_fallback(builder, cand_idx)
        kept.sort()
        return tuple(catalog.item_at(i) for i in kept)

    def _mask_actions_full_fallback(
        self, builder: PlanBuilder, cand_idx: np.ndarray
    ) -> tuple:
        """Materialize the candidate indices and run the unpruned cascade."""
        catalog = builder.catalog
        candidates = tuple(
            catalog.item_at(int(i)) for i in cand_idx.tolist()
        )
        return self.mask_actions(builder, candidates)

    def _feasibility_context(
        self, builder: PlanBuilder
    ) -> Optional["_FeasibilityContext"]:
        """Per-step feasibility pool shared by every candidate check.

        Builds, once, everything :meth:`feasibility_gate` recomputes per
        candidate: the reachability of the remaining pool (vectorized
        through :meth:`_CatalogView.prereq_satisfied`), the primary
        count, the per-category credit aggregates, the candidate-fixable
        items, and the travelled-distance base.  Returns None when no
        slot remains (every candidate infeasible).
        """
        hard = self.task.hard
        slots_after = hard.plan_length - (len(builder) + 1)
        if slots_after < 0:
            return None

        catalog = builder.catalog
        view = self._view(catalog)
        cols = view.cols
        positions = builder.positions
        k = len(builder)
        last_slot = hard.plan_length - 1
        gap = hard.gap
        candidate_can_fix = last_slot - k >= gap
        minima = hard.category_credit_map

        # Base reachability of the pool under the current positions; a
        # candidate can only *add* reachability when it is a member of
        # every unsatisfied OR-group of a pooled item.
        remaining_idx = builder.remaining_indices()
        satisfied = view.prereq_satisfied(positions, last_slot, gap)
        remaining_sat = satisfied[remaining_idx]
        reachable_idx = remaining_idx[remaining_sat]
        reachable = np.zeros(len(catalog), dtype=bool)
        reachable[reachable_idx] = True
        reachable_primaries = int(cols.primary_mask[reachable_idx].sum())

        category_stats: Dict[str, _CategoryPoolStats] = {}
        if minima:
            category_index = {c: i for i, c in enumerate(cols.categories)}
            pool_codes = cols.category_codes[reachable_idx]
            for category in minima:
                code = category_index.get(category)
                if code is None:
                    continue
                sel = reachable_idx[pool_codes == code]
                if sel.size == 0:
                    continue
                stats = _CategoryPoolStats()
                credits = cols.credits[sel]
                stats.count = int(sel.size)
                stats.primaries = int(cols.primary_mask[sel].sum())
                min1 = float(credits.min())
                stats.min1 = min1
                stats.min1_count = int((credits == min1).sum())
                above = credits[credits > min1]
                stats.min2 = float(above.min()) if above.size else float("inf")
                category_stats[category] = stats

        fixers: Dict[str, List[Item]] = {}
        if candidate_can_fix:
            for i in remaining_idx[~remaining_sat].tolist():
                other = catalog.item_at(i)
                unsatisfied = [
                    group
                    for group in other.prerequisites.groups
                    if not any(
                        member in positions
                        and last_slot - positions[member] >= gap
                        for member in group
                    )
                ]
                common = frozenset.intersection(*unsatisfied)
                for fixer_id in common:
                    fixers.setdefault(fixer_id, []).append(other)

        base_earned: Dict[str, float] = {}
        if minima:
            for chosen in builder.items:
                if chosen.category is not None:
                    base_earned[chosen.category] = (
                        base_earned.get(chosen.category, 0.0) + chosen.credits
                    )

        max_distance = hard.max_distance
        distance_applies = max_distance is not None and len(builder) > 0
        base_distance = 0.0
        last_coords: Optional[Tuple[float, float]] = None
        if distance_applies:
            coords = []
            for chosen in builder.items:
                lat, lon = chosen.meta("lat"), chosen.meta("lon")
                if lat is None or lon is None:
                    distance_applies = False  # no geo data: nothing to enforce
                    break
                coords.append((float(lat), float(lon)))
            if distance_applies:
                for a, b in zip(coords, coords[1:]):
                    base_distance += haversine_km(a[0], a[1], b[0], b[1])
                last_coords = coords[-1]

        return _FeasibilityContext(
            reward=self,
            index_map=catalog.index_map,
            slots_after=slots_after,
            base_primaries=builder.num_primary,
            reachable=reachable,
            reachable_primaries=reachable_primaries,
            category_stats=category_stats,
            fixers=fixers,
            base_earned=base_earned,
            distance_applies=distance_applies,
            base_distance=base_distance,
            last_coords=last_coords,
        )

    def feasible_mask(
        self, builder: PlanBuilder, candidates: Sequence[Item]
    ) -> np.ndarray:
        """Vectorized :meth:`feasibility_gate` over many candidates.

        The feasibility pool (remaining items, their reachability, the
        per-category credit aggregates, the travelled distance) is
        computed *once* per step (:meth:`_feasibility_context`) and
        adjusted per candidate in O(1) amortized, instead of rebuilt per
        candidate.
        """
        candidates = tuple(candidates)
        out = np.zeros(len(candidates), dtype=bool)
        if not candidates:
            return out
        ctx = self._feasibility_context(builder)
        if ctx is None:
            return out
        for j, cand in enumerate(candidates):
            out[j] = ctx.check(cand)
        return out

    def _joint_feasible_pooled(
        self,
        cand: Item,
        category_stats: Dict[str, _CategoryPoolStats],
        base_earned: Dict[str, float],
        fixed: Sequence[Item],
        cand_reachable: bool,
        slots_after: int,
        primaries_short: int,
        unused_primaries: int,
    ) -> bool:
        """`_joint_feasible` against precomputed pool aggregates."""
        minima = self.task.hard.category_credit_map
        slots_used = 0
        primaries_covered = 0
        for category, minimum in minima.items():
            earned = base_earned.get(category, 0.0)
            if cand.category == category:
                earned += cand.credits
            shortfall = minimum - earned
            if shortfall <= 1e-9:
                continue
            stats = category_stats.get(category)
            if stats is None:
                pool_count = 0
                pool_min = float("inf")
                pool_primaries = 0
            else:
                pool_count = stats.count
                pool_min = stats.min1
                pool_primaries = stats.primaries
                if cand_reachable and cand.category == category:
                    pool_count -= 1
                    pool_min = stats.min_without(cand.credits)
                    if cand.is_primary:
                        pool_primaries -= 1
            for other in fixed:
                if other.category == category:
                    pool_count += 1
                    pool_min = min(pool_min, other.credits)
                    if other.is_primary:
                        pool_primaries += 1
            if pool_count == 0:
                return False
            per_item = pool_min
            needed = int(-(-shortfall // per_item))  # ceil division
            if needed > pool_count:
                return False
            slots_used += needed
            primaries_covered += min(needed, pool_primaries)

        if slots_used > slots_after:
            return False
        primaries_left = max(0, primaries_short - primaries_covered)
        free_slots = slots_after - slots_used
        if primaries_left > free_slots:
            return False
        return primaries_left <= unused_primaries

    def batch_components(
        self, builder: PlanBuilder, candidates: Sequence[Item]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized Eq. 2 components for every candidate.

        Returns ``(theta, similarity, type_weight, total)`` arrays
        aligned with ``candidates``; values equal the per-item
        :meth:`breakdown` fields exactly (the equality is pinned by
        tests).  Similarity is evaluated through the plan builder's
        incremental state: since every candidate extends the same prefix
        at the same position, only two aggregated similarities exist —
        one per item type — and each costs O(|IT|).
        """
        candidates = tuple(candidates)
        n = len(candidates)
        if n == 0:
            empty = np.zeros(0, dtype=np.float64)
            return np.zeros(0, dtype=bool), empty, empty.copy(), empty.copy()
        catalog = builder.catalog
        cand_idx = self._candidate_indices(catalog, candidates)
        if cand_idx is None:
            return self._batch_components_scalar(builder, candidates)
        view = self._view(catalog)

        theta = self._coverage_mask(builder, view, cand_idx)
        theta &= self._gap_mask(builder, view, candidates, cand_idx)

        template = self.task.soft.template
        if len(builder) + 1 > template.length or not theta.any():
            sims = np.zeros(n, dtype=np.float64)
        else:
            state = builder.similarity_state(template, self.config.similarity)
            sim_primary, sim_secondary = state.peek_types()
            sims = np.where(
                view.cols.primary_mask[cand_idx], sim_primary, sim_secondary
            )
            sims = np.where(theta, sims, 0.0)

        weights = view.item_weights[cand_idx]
        totals = np.where(
            theta,
            self.config.weights.delta * sims
            + self.config.weights.beta * weights,
            0.0,
        )
        return theta, sims, weights, totals

    def _batch_components_scalar(
        self, builder: PlanBuilder, candidates: Tuple[Item, ...]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fallback path when candidates are outside the catalog index."""
        n = len(candidates)
        theta = np.zeros(n, dtype=bool)
        sims = np.zeros(n, dtype=np.float64)
        weights = np.zeros(n, dtype=np.float64)
        totals = np.zeros(n, dtype=np.float64)
        for j, item in enumerate(candidates):
            b = self.breakdown(builder, item)
            theta[j] = b.theta != 0
            sims[j] = b.similarity
            weights[j] = b.type_weight
            totals[j] = b.total
        return theta, sims, weights, totals

    def reward_batch(
        self, builder: PlanBuilder, candidates: Sequence[Item]
    ) -> np.ndarray:
        """Equation-2 rewards for all candidates as one float64 vector.

        Semantically identical to ``[self(builder, c) for c in
        candidates]`` but O(|I|) per step instead of
        O(|I| * (|I| + k*|IT|)).
        """
        return self.batch_components(builder, candidates)[3]

    def reward_batch_multi(
        self,
        builders: Sequence[PlanBuilder],
        cand_idx_lists: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """Eq. 2 rewards for many (builder, candidate-set) pairs at once.

        All builders must share one catalog; ``cand_idx_lists[e]`` holds
        catalog indices of episode ``e``'s candidates.  Bit-identical to
        calling :meth:`reward_batch` per episode (the per-element float
        operations are the same), but the coverage gate runs as one
        stacked matrix reduction over the concatenated candidates — the
        reduction whose fixed per-call overhead dominates small steps,
        which is what makes episode-batched SARSA training pay off.
        """
        if not builders:
            return []
        view = self._view(builders[0].catalog)
        counts = [int(np.asarray(ci).size) for ci in cand_idx_lists]
        offsets = np.concatenate(
            [[0], np.cumsum(np.asarray(counts, dtype=np.int64))]
        )
        total = int(offsets[-1])
        if total == 0:
            return [np.zeros(0, dtype=np.float64) for _ in counts]
        cand_arrays = [
            np.asarray(ci, dtype=np.int64).ravel() for ci in cand_idx_lists
        ]
        cand_all = np.concatenate(cand_arrays)
        ep_of = np.repeat(np.arange(len(builders)), counts)

        covered_rows = np.stack(
            [view.covered_ideal(b.covered_topics) for b in builders]
        )
        gained = (view.ideal_matrix[cand_all] & ~covered_rows[ep_of]).sum(
            axis=1
        )
        theta = gained >= self._coverage_needed
        for e, b in enumerate(builders):
            lo, hi = int(offsets[e]), int(offsets[e + 1])
            if hi == lo:
                continue
            theta[lo:hi] &= self._gap_mask_idx(b, view, cand_arrays[e])

        sims = np.zeros(total, dtype=np.float64)
        template = self.task.soft.template
        for e, b in enumerate(builders):
            lo, hi = int(offsets[e]), int(offsets[e + 1])
            if hi == lo:
                continue
            theta_seg = theta[lo:hi]
            if len(b) + 1 > template.length or not theta_seg.any():
                continue
            state = b.similarity_state(template, self.config.similarity)
            sim_primary, sim_secondary = state.peek_types()
            seg = np.where(
                view.cols.primary_mask[cand_arrays[e]],
                sim_primary,
                sim_secondary,
            )
            sims[lo:hi] = np.where(theta_seg, seg, 0.0)

        weights = view.item_weights[cand_all]
        totals = np.where(
            theta,
            self.config.weights.delta * sims
            + self.config.weights.beta * weights,
            0.0,
        )
        return [
            totals[int(offsets[e]) : int(offsets[e + 1])]
            for e in range(len(builders))
        ]

    # ------------------------------------------------------------------
    # Equation 2
    # ------------------------------------------------------------------

    def breakdown(self, builder: PlanBuilder, item: Item) -> RewardBreakdown:
        """Full component breakdown for adding ``item`` to ``builder``."""
        r1 = self.coverage_gate(builder, item)
        r2 = self.gap_gate(builder, item)
        theta = r1 * r2
        if theta == 0:
            # Short-circuit: the gated total is zero regardless of the
            # soft terms; still compute them lazily only when gated in.
            return RewardBreakdown(
                r1_coverage=r1,
                r2_gap=r2,
                similarity=0.0,
                type_weight=self.type_weight(item),
                total=0.0,
            )
        sim = self.interleaving_similarity(builder, item)
        weight = self.type_weight(item)
        total = theta * (
            self.config.weights.delta * sim
            + self.config.weights.beta * weight
        )
        return RewardBreakdown(
            r1_coverage=r1,
            r2_gap=r2,
            similarity=sim,
            type_weight=weight,
            total=total,
        )

    def __call__(self, builder: PlanBuilder, item: Item) -> float:
        """Equation-2 reward for taking the action that adds ``item``."""
        return self.breakdown(builder, item).total

    def best_possible(self) -> float:
        """Upper bound of a single-step reward (for normalization).

        With theta = 1, similarity <= template length (zeta and the match
        count are each at most k, so Eq. 6 is bounded by k), and weight
        <= max type/category weight.
        """
        weights = [self.config.weights.w_primary, self.config.weights.w_secondary]
        weights.extend(self._category_weights.values())
        return (
            self.config.weights.delta * self.task.soft.template.length
            + self.config.weights.beta * max(weights)
        )


def batch_rewards(
    reward, builder: PlanBuilder, candidates: Sequence[Item]
) -> np.ndarray:
    """Score all candidates in one shot, whatever the reward object is.

    Uses ``reward.reward_batch`` when the callable provides it (the
    vectorized engine) and falls back to a per-item loop for plain
    RewardFunction-compatible callables (e.g. test doubles), so every
    hot-loop call site can switch to batch scoring unconditionally.
    """
    batch = getattr(reward, "reward_batch", None)
    if batch is not None:
        return batch(builder, candidates)
    return np.fromiter(
        (reward(builder, item) for item in candidates),
        dtype=np.float64,
        count=len(candidates),
    )
