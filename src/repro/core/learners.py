"""Alternative model-free learners for the TPP CMDP.

Section III-C surveys the solution space — value/policy iteration,
Monte Carlo control, and temporal-difference methods — before settling
on SARSA.  This module implements the classic alternatives over the
same environment and Q-table so the choice can be measured instead of
asserted:

* :class:`QLearningLearner` — off-policy TD (the max-operator target),
* :class:`ExpectedSarsaLearner` — on-policy TD with the expectation
  target under the epsilon-greedy behaviour policy,
* :class:`MonteCarloLearner` — first-visit MC control with constant-
  alpha returns (no bootstrapping).

All three share :class:`SarsaLearner`'s episode plumbing (behaviour
policy, start pools, diagnostics) and differ only in the update target,
so the comparison bench isolates exactly the paper's design decision.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .config import PlannerConfig
from .env import TPPEnvironment
from .items import Item
from .qtable import QTableBase
from .sarsa import ActionSelection, EpisodeStats, SarsaLearner


class QLearningLearner(SarsaLearner):
    """Off-policy Q-learning: target = r + gamma * max_a' Q(s', a').

    Identical rollouts to SARSA; only the bootstrap target changes, so
    any performance difference is attributable to on- vs off-policy
    bootstrapping.
    """

    def _run_episode(
        self, table: QTableBase, episode: int, start_id: str
    ) -> EpisodeStats:
        env = self.env
        catalog = env.catalog
        index_map = catalog.index_map
        state = env.reset(start_id)
        s_idx = index_map[state.item_id]
        total_reward = 0.0
        zero_steps = 0

        while True:
            actions = env.valid_actions()
            if not actions:
                break
            action = self._choose_action(table, state, actions)
            a_idx = index_map[action.item_id]
            reward, done = env.step(action)
            total_reward += reward
            if reward == 0.0:
                zero_steps += 1

            if done:
                table.td_update(
                    s_idx, a_idx, reward, self.config.learning_rate
                )
                break
            next_actions = env.valid_actions()
            if not next_actions:
                table.td_update(
                    s_idx, a_idx, reward, self.config.learning_rate
                )
                break
            next_indices = np.fromiter(
                (index_map[item.item_id] for item in next_actions),
                dtype=np.int64,
                count=len(next_actions),
            )
            best_next = float(table.row_values(a_idx, next_indices).max())
            target = reward + self.config.discount * best_next
            table.td_update(s_idx, a_idx, target, self.config.learning_rate)
            state = action
            s_idx = a_idx

        return EpisodeStats(
            episode=episode,
            start_item_id=start_id,
            length=len(env.builder),
            total_reward=total_reward,
            zero_reward_steps=zero_steps,
        )


class ExpectedSarsaLearner(SarsaLearner):
    """Expected SARSA: target = r + gamma * E_pi[Q(s', .)].

    The expectation is taken under the epsilon-greedy distribution the
    behaviour policy actually follows (uniform epsilon mass plus the
    greedy remainder), removing SARSA's sampling variance in the target.
    """

    def _expected_value(
        self, table: QTableBase, state: Item, actions: Sequence[Item]
    ) -> float:
        index_map = self.env.catalog.index_map
        s_idx = index_map[state.item_id]
        indices = np.fromiter(
            (index_map[item.item_id] for item in actions),
            dtype=np.int64,
            count=len(actions),
        )
        values = table.row_values(s_idx, indices)
        eps = self.config.exploration
        if len(values) == 1:
            return float(values[0])
        greedy = float(values.max())
        uniform = float(values.mean())
        return eps * uniform + (1.0 - eps) * greedy

    def _run_episode(
        self, table: QTableBase, episode: int, start_id: str
    ) -> EpisodeStats:
        env = self.env
        catalog = env.catalog
        index_map = catalog.index_map
        state = env.reset(start_id)
        s_idx = index_map[state.item_id]
        total_reward = 0.0
        zero_steps = 0

        while True:
            actions = env.valid_actions()
            if not actions:
                break
            action = self._choose_action(table, state, actions)
            a_idx = index_map[action.item_id]
            reward, done = env.step(action)
            total_reward += reward
            if reward == 0.0:
                zero_steps += 1

            if done:
                table.td_update(
                    s_idx, a_idx, reward, self.config.learning_rate
                )
                break
            next_actions = env.valid_actions()
            if not next_actions:
                table.td_update(
                    s_idx, a_idx, reward, self.config.learning_rate
                )
                break
            expected = self._expected_value(table, action, next_actions)
            target = reward + self.config.discount * expected
            table.td_update(s_idx, a_idx, target, self.config.learning_rate)
            state = action
            s_idx = a_idx

        return EpisodeStats(
            episode=episode,
            start_item_id=start_id,
            length=len(env.builder),
            total_reward=total_reward,
            zero_reward_steps=zero_steps,
        )


class MonteCarloLearner(SarsaLearner):
    """First-visit constant-alpha Monte Carlo control.

    The whole episode is rolled out first; each visited (state, action)
    pair is then updated toward its observed discounted return.  No
    bootstrapping — the textbook contrast to the TD learners above.
    """

    def _run_episode(
        self, table: QTableBase, episode: int, start_id: str
    ) -> EpisodeStats:
        env = self.env
        catalog = env.catalog
        index_map = catalog.index_map
        state = env.reset(start_id)
        s_idx = index_map[state.item_id]
        total_reward = 0.0
        zero_steps = 0
        trajectory: List[Tuple[int, int, float]] = []

        while True:
            actions = env.valid_actions()
            if not actions:
                break
            action = self._choose_action(table, state, actions)
            a_idx = index_map[action.item_id]
            reward, done = env.step(action)
            total_reward += reward
            if reward == 0.0:
                zero_steps += 1
            trajectory.append((s_idx, a_idx, reward))
            if done:
                break
            state = action
            s_idx = a_idx

        # Backward pass: discounted returns, first-visit updates.
        g = 0.0
        seen: set = set()
        returns: Dict[Tuple[int, int], float] = {}
        for s_idx, a_idx, reward in reversed(trajectory):
            g = reward + self.config.discount * g
            returns[(s_idx, a_idx)] = g  # earliest visit wins (overwrites)
        for (s_idx, a_idx), g_value in returns.items():
            if (s_idx, a_idx) not in seen:
                seen.add((s_idx, a_idx))
                table.td_update(
                    s_idx, a_idx, g_value, self.config.learning_rate
                )

        return EpisodeStats(
            episode=episode,
            start_item_id=start_id,
            length=len(env.builder),
            total_reward=total_reward,
            zero_reward_steps=zero_steps,
        )


LEARNERS: Dict[str, type] = {
    "sarsa": SarsaLearner,
    "q_learning": QLearningLearner,
    "expected_sarsa": ExpectedSarsaLearner,
    "monte_carlo": MonteCarloLearner,
}


def make_learner(
    name: str,
    env: TPPEnvironment,
    config: PlannerConfig,
    selection: ActionSelection = ActionSelection.REWARD_GREEDY,
) -> SarsaLearner:
    """Instantiate a learner by registry name (see :data:`LEARNERS`)."""
    try:
        cls = LEARNERS[name]
    except KeyError:
        raise ValueError(
            f"unknown learner {name!r}; available: {sorted(LEARNERS)}"
        ) from None
    return cls(env, config, selection=selection)
