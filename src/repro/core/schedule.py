"""Turning plans into calendars.

The prerequisite gap has a temporal reading — "gap = 3 enforces that the
prerequisites of m must be taken at least a semester before" when a
student takes 3 courses per semester.  This module makes that reading
concrete: it folds a recommended plan into *periods* (semesters for
courses, time-of-day slots for trips) and renders the schedule the way
an advisor would hand it out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .exceptions import PlanningError
from .items import Item
from .plan import Plan


@dataclass(frozen=True)
class Period:
    """One schedule period (e.g. a semester) with its items."""

    index: int
    label: str
    items: Tuple[Item, ...]

    @property
    def total_credits(self) -> float:
        """Credits/hours within the period."""
        return sum(item.credits for item in self.items)


@dataclass(frozen=True)
class Schedule:
    """A plan folded into consecutive periods."""

    periods: Tuple[Period, ...]
    plan: Plan

    def __len__(self) -> int:
        return len(self.periods)

    def _period_index(self) -> Dict[str, int]:
        """``item_id -> period index`` map, built once per schedule.

        Cached via ``object.__setattr__`` (the dataclass is frozen);
        periods are immutable tuples, so the map can never go stale.
        """
        cached = self.__dict__.get("_period_index_cache")
        if cached is None:
            cached = {
                item.item_id: period.index
                for period in self.periods
                for item in period.items
            }
            object.__setattr__(self, "_period_index_cache", cached)
        return cached

    def period_of(self, item_id: str) -> int:
        """0-based period index of an item (raises when absent)."""
        index = self._period_index().get(item_id)
        if index is None:
            raise PlanningError(f"item {item_id!r} not in the schedule")
        return index

    def respects_prerequisites(self) -> bool:
        """True when every antecedent sits in a strictly earlier period.

        This is the advisor-facing restatement of the gap constraint:
        with ``items_per_period == gap``, a gap-valid plan always folds
        into a prerequisite-respecting schedule.  One precomputed
        ``item_id -> period`` map serves every membership test, so the
        check is O(total prerequisite members), not O(P·n).
        """
        period_index = self._period_index()
        for period in self.periods:
            for item in period.items:
                if item.prerequisites.is_empty:
                    continue
                for group in item.prerequisites.groups:
                    if not any(
                        period_index.get(member, period.index)
                        < period.index
                        for member in group
                    ):
                        return False
        return True

    def describe(self) -> str:
        """Multi-line rendering, one period per block."""
        lines: List[str] = []
        for period in self.periods:
            lines.append(
                f"{period.label} ({period.total_credits:g} credits)"
            )
            for item in period.items:
                lines.append(
                    f"  - {item.item_id}: {item.name} "
                    f"({item.item_type.value})"
                )
        return "\n".join(lines)


def fold_plan(
    plan: Plan,
    items_per_period: int,
    label_format: str = "Semester {n}",
) -> Schedule:
    """Fold a plan into periods of ``items_per_period`` items each.

    For course plans the natural ``items_per_period`` equals the
    hard-constraint ``gap`` (courses per semester in the paper's
    running example).

    ``label_format`` must reference the period number ``{n}`` (any
    format spec, e.g. ``"Sem {n:02d}"``); a format that ignores it — or
    uses an unknown field — raises :class:`PlanningError` up front
    instead of a cryptic ``KeyError`` or silently constant labels.
    """
    if items_per_period < 1:
        raise PlanningError("items_per_period must be >= 1")
    try:
        distinct = (
            label_format.format(n=1) != label_format.format(n=2)
        )
    except (KeyError, IndexError, ValueError) as exc:
        raise PlanningError(
            f"bad period label_format {label_format!r}: {exc} "
            "(the format may reference only the field {n})"
        ) from exc
    if not distinct:
        raise PlanningError(
            f"period label_format {label_format!r} never varies: it "
            "must reference the period number {n}"
        )
    periods: List[Period] = []
    for start in range(0, len(plan), items_per_period):
        chunk = plan.items[start:start + items_per_period]
        index = start // items_per_period
        periods.append(
            Period(
                index=index,
                label=label_format.format(n=index + 1),
                items=tuple(chunk),
            )
        )
    return Schedule(periods=tuple(periods), plan=plan)


def fold_trip_day(
    plan: Plan,
    day_start_hour: float = 9.0,
    leg_minutes: float = 20.0,
) -> List[Tuple[str, float, float]]:
    """Assign wall-clock visit windows to an itinerary.

    Returns (item id, start hour, end hour) triples assuming a fixed
    walking time between POIs — the way Table VIII's itineraries read
    as an actual day out.
    """
    out: List[Tuple[str, float, float]] = []
    clock = day_start_hour
    for i, item in enumerate(plan.items):
        if i > 0:
            clock += leg_minutes / 60.0
        out.append((item.item_id, clock, clock + item.credits))
        clock += item.credits
    return out
