"""The RL-Planner facade: the library's primary public entry point.

Typical use::

    from repro import RLPlanner, PlannerConfig
    from repro.datasets import load_univ1_dsct

    dataset = load_univ1_dsct(seed=7)
    planner = RLPlanner(dataset.catalog, dataset.task,
                        config=PlannerConfig.univ1_default())
    planner.fit()
    plan = planner.recommend(dataset.default_start)
    print(plan.describe(), planner.score(plan).value)

The facade wires the environment, SARSA learner, greedy recommender,
scorer, and transfer helpers behind a small API.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Sequence, Tuple

from .catalog import Catalog
from .config import PlannerConfig, RecommendationMode
from .constraints import TaskSpec
from .env import DomainMode, TPPEnvironment
from .exceptions import UntrainedPolicyError
from .items import Item
from .plan import Plan
from .policy import GreedyPolicy
from .qtable import QTableBase
from .reward import RewardFunction
from .sarsa import ActionSelection, LearningResult
from .scoring import PlanScore, PlanScorer
from .transfer import TransferResult, transfer_policy


class RLPlanner:
    """End-to-end RL-Planner for one (catalog, task) pair.

    Parameters
    ----------
    catalog:
        The item universe.
    task:
        Hard + soft constraints.
    config:
        Hyper-parameters (defaults to :meth:`PlannerConfig.univ1_default`
        semantics via the plain :class:`PlannerConfig` constructor).
    mode:
        Course or trip episode semantics.
    selection:
        Learning behaviour policy (paper default: reward-greedy).
    """

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: Optional[PlannerConfig] = None,
        mode: DomainMode = DomainMode.COURSE,
        selection: ActionSelection = ActionSelection.REWARD_GREEDY,
        learner: str = "sarsa",
    ) -> None:
        self.catalog = catalog
        self.task = task
        self.config = config if config is not None else PlannerConfig()
        self.mode = mode
        self.selection = selection
        self.learner_name = learner
        self.env = TPPEnvironment(catalog, task, self.config, mode=mode)
        self.scorer = PlanScorer(task, mode=mode)
        self._qtable: Optional[QTableBase] = None
        self._last_result: Optional[LearningResult] = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(
        self,
        start_item_ids: Optional[Sequence[str]] = None,
        episodes: Optional[int] = None,
        warm_start: Optional[QTableBase] = None,
    ) -> LearningResult:
        """Learn a policy and keep the resulting Q-table.

        The learning algorithm is chosen by the constructor's
        ``learner`` name ("sarsa" — the paper's choice — or
        "q_learning" / "expected_sarsa" / "monte_carlo" for the
        solver-comparison bench).
        """
        from .learners import make_learner

        learner = make_learner(
            self.learner_name, self.env, self.config,
            selection=self.selection,
        )
        result = learner.learn(
            start_item_ids=start_item_ids,
            episodes=episodes,
            qtable=warm_start,
        )
        self._qtable = result.qtable
        self._last_result = result
        return result

    @property
    def is_fitted(self) -> bool:
        """True after :meth:`fit` (or after adopting a transferred table)."""
        return self._qtable is not None

    @property
    def qtable(self) -> QTableBase:
        """The learned Q-table (raises before training)."""
        if self._qtable is None:
            raise UntrainedPolicyError("call fit() before accessing qtable")
        return self._qtable

    @property
    def last_learning_result(self) -> Optional[LearningResult]:
        """Diagnostics of the most recent :meth:`fit` call."""
        return self._last_result

    def reward_function(self) -> RewardFunction:
        """The Equation-2 reward bound to this planner's task/config."""
        return self.env.reward

    # ------------------------------------------------------------------
    # Recommendation & scoring
    # ------------------------------------------------------------------

    def recommend(
        self, start_item_id: str, horizon: Optional[int] = None
    ) -> Plan:
        """Greedy Q-traversal plan from ``start_item_id`` (Algorithm 1).

        With ``config.portfolio`` (the default) two traversals are rolled
        out — the configured lookahead and the pure gated-greedy
        (lookahead weight 0) — and the plan scoring higher under the
        task's own scorer is returned.
        """
        weights = self._portfolio_weights()

        best_plan: Optional[Plan] = None
        best_key = None
        for weight in weights:
            plan = self._build_policy(weight).recommend(
                start_item_id, horizon=horizon
            )
            score = self.scorer.score(plan)
            key = (score.is_valid, score.value, score.raw_value)
            if best_key is None or key > best_key:
                best_key = key
                best_plan = plan
        assert best_plan is not None  # weights is never empty
        return best_plan

    def _portfolio_weights(self) -> Sequence[float]:
        """Lookahead weights the recommendation portfolio rolls out."""
        weights = [self._effective_lookahead_weight()]
        if (
            self.config.portfolio
            and self.config.recommendation is RecommendationMode.LOOKAHEAD
            and weights[0] != 0.0
        ):
            weights.append(0.0)
        return weights

    def _effective_lookahead_weight(self) -> float:
        if self.config.lookahead_weight is not None:
            return self.config.lookahead_weight
        return self.config.discount

    def _build_policy(self, lookahead_weight: float) -> GreedyPolicy:
        needs_reward = (
            self.config.mask_invalid_actions
            or self.config.recommendation is RecommendationMode.LOOKAHEAD
        )
        return GreedyPolicy(
            self.qtable,
            self.task,
            mode=self.mode,
            rng_seed=self.config.seed,
            reward=self.env.reward if needs_reward else None,
            recommendation=self.config.recommendation,
            discount=lookahead_weight,
            mask=self.config.mask_invalid_actions,
        )

    def recommend_scored(
        self, start_item_id: str, horizon: Optional[int] = None
    ) -> Tuple[Plan, PlanScore]:
        """Recommend and score in one call."""
        plan = self.recommend(start_item_id, horizon=horizon)
        return plan, self.scorer.score(plan)

    def recommend_best(
        self,
        start_item_ids: Optional[Sequence[str]] = None,
        horizon: Optional[int] = None,
    ) -> Tuple[Plan, PlanScore]:
        """Best-scoring plan over several starting items.

        The paper traverses the Q-table "with different starting
        states"; this helper does exactly that and keeps the winner
        (valid beats invalid, then higher score).  ``start_item_ids``
        defaults to every primary item without prerequisites — the
        items a plan can realistically open with.
        """
        if start_item_ids is None:
            start_item_ids = [
                item.item_id
                for item in self.catalog.primaries()
                if item.prerequisites.is_empty
            ] or [self.catalog.items[0].item_id]
        best: Optional[Tuple[Plan, PlanScore]] = None
        for start in start_item_ids:
            plan, score = self.recommend_scored(start, horizon=horizon)
            if best is None or (
                (score.is_valid, score.value, score.raw_value)
                > (best[1].is_valid, best[1].value, best[1].raw_value)
            ):
                best = (plan, score)
        assert best is not None  # start list is never empty
        return best

    def recommend_anytime(
        self,
        start_item_ids: Optional[Sequence[str]] = None,
        horizon: Optional[int] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        stop_when_valid: bool = False,
        allowed_item_ids: Optional[FrozenSet[str]] = None,
    ) -> Tuple[Optional[Plan], Optional[PlanScore], bool]:
        """Best-so-far recommendation under a stop callback.

        Sweeps the same (start, lookahead-weight) rollouts as
        :meth:`recommend_best`, but checks ``should_stop`` before each
        rollout and returns the best snapshot found so far the moment it
        fires — the anytime contract the serving layer's deadline needs.
        A single rollout is never preempted mid-flight (they are
        milliseconds), so the callback granularity is one rollout.

        ``allowed_item_ids`` restricts every rollout to a live subset of
        the training catalog (availability churn serving a stale policy).

        Returns ``(plan, score, exhausted)``; ``plan`` is ``None`` when
        the callback fired before the first rollout completed, and
        ``exhausted`` is True when every rollout ran (i.e. the result
        matches :meth:`recommend_best`).  With ``stop_when_valid`` the
        sweep additionally short-circuits after the first start whose
        best rollout is hard-constraint valid.
        """
        if start_item_ids is None:
            start_item_ids = [
                item.item_id
                for item in self.catalog.primaries()
                if item.prerequisites.is_empty
                and (
                    allowed_item_ids is None
                    or item.item_id in allowed_item_ids
                )
            ] or [self.catalog.items[0].item_id]
        weights = self._portfolio_weights()
        best: Optional[Tuple[Plan, PlanScore]] = None
        best_key = None
        for start in start_item_ids:
            for weight in weights:
                if should_stop is not None and should_stop():
                    if best is None:
                        return None, None, False
                    return best[0], best[1], False
                plan = self._build_policy(weight).recommend(
                    start, horizon=horizon,
                    allowed_item_ids=allowed_item_ids,
                )
                score = self.scorer.score(plan)
                key = (score.is_valid, score.value, score.raw_value)
                if best_key is None or key > best_key:
                    best_key = key
                    best = (plan, score)
            if stop_when_valid and best is not None and best[1].is_valid:
                exhausted = start == start_item_ids[-1]
                return best[0], best[1], exhausted
        if best is None:
            return None, None, True
        return best[0], best[1], True

    def complete_plan(
        self,
        prefix_items: Sequence[Item],
        horizon: Optional[int] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        allowed_item_ids: Optional[FrozenSet[str]] = None,
        scorer: Optional[PlanScorer] = None,
    ) -> Tuple[Optional[Plan], Optional[PlanScore], bool]:
        """Anytime portfolio completion of a committed plan prefix.

        Rolls the lookahead-weight portfolio over
        :meth:`GreedyPolicy.complete` — the prefix stays verbatim, only
        the suffix varies — and keeps the best-scoring completion.  A
        caller-supplied ``scorer`` lets a replan session judge
        completions under *its* (possibly delta-updated) task rather
        than the planner's training task.  Same anytime contract and
        return shape as :meth:`recommend_anytime`.
        """
        judge = scorer if scorer is not None else self.scorer
        best: Optional[Tuple[Plan, PlanScore]] = None
        best_key = None
        for weight in self._portfolio_weights():
            if should_stop is not None and should_stop():
                if best is None:
                    return None, None, False
                return best[0], best[1], False
            plan = self._build_policy(weight).complete(
                prefix_items, horizon=horizon,
                allowed_item_ids=allowed_item_ids,
            )
            score = judge.score(plan)
            key = (score.is_valid, score.value, score.raw_value)
            if best_key is None or key > best_key:
                best_key = key
                best = (plan, score)
        if best is None:
            return None, None, True
        return best[0], best[1], True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_policy(self, path) -> None:
        """Write the learned Q-table to a JSON file."""
        from .serialization import save_policy

        save_policy(self.qtable, path)

    def load_policy(self, path, strict: bool = False) -> None:
        """Load a previously saved Q-table for this catalog."""
        from .serialization import load_policy

        self._qtable = load_policy(path, self.catalog, strict=strict)

    def score(self, plan: Plan) -> PlanScore:
        """Score any plan under this planner's task (Section IV-A)."""
        return self.scorer.score(plan)

    # ------------------------------------------------------------------
    # Transfer learning
    # ------------------------------------------------------------------

    def transfer_to(
        self,
        target_catalog: Catalog,
        target_task: TaskSpec,
        strategy: str = "auto",
        config: Optional[PlannerConfig] = None,
    ) -> Tuple["RLPlanner", TransferResult]:
        """Build a planner for another task seeded with this policy.

        Returns the new planner (already fitted with the transferred
        table — no additional learning is run, matching Section IV-D) and
        the transfer diagnostics.
        """
        result = transfer_policy(self.qtable, target_catalog, strategy=strategy)
        target = RLPlanner(
            target_catalog,
            target_task,
            config=config if config is not None else self.config,
            mode=self.mode,
            selection=self.selection,
        )
        target._qtable = result.qtable
        return target, result

    def adopt_policy(self, qtable: QTableBase) -> None:
        """Install an externally produced Q-table (e.g. deserialized)."""
        if qtable.catalog is not self.catalog and set(
            qtable.catalog.item_ids
        ) != set(self.catalog.item_ids):
            raise UntrainedPolicyError(
                "adopted Q-table indexes a different catalog; use "
                "transfer_to() instead"
            )
        self._qtable = qtable

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def policy_entries(self) -> Dict[Tuple[str, str], float]:
        """Sparse (state_id, action_id) -> Q snapshot of the policy."""
        return self.qtable.to_entries()

    def __repr__(self) -> str:  # pragma: no cover - display helper
        fitted = "fitted" if self.is_fitted else "unfitted"
        return (
            f"RLPlanner(catalog={self.catalog.name!r}, task="
            f"{self.task.name!r}, mode={self.mode.value}, {fitted})"
        )
