"""Planner configuration with the paper's Table III defaults.

Table III gives default hyper-parameters per dataset:

* Univ-1: N=500, alpha=0.75, gamma=0.95, epsilon=0.0025, start=STATS/CS
  course, delta=0.8, beta=0.2 (robustness sweeps find delta=0.6/beta=0.4
  with w1=0.6/w2=0.4 best for DS-CT).
* Univ-2: N=100, same alpha/gamma/epsilon, six category weights
  w1..w6 = (0.25, 0.01, 0.15, 0.42, 0.01, 0.16).
* NYC/Paris: N=500, alpha=0.95, gamma=0.75, distance threshold d=5,
  time threshold t=6, delta=0.6, beta=0.4.

The coverage threshold ``epsilon`` is documented in Section III-B-1 as a
*count* of newly covered ideal topics ("given epsilon = 1") but Table III
lists fractional values (0.0025 … 0.02).  We reconcile the two readings:
a value >= 1 is a raw count; a value < 1 is a fraction of ``|T_ideal|``
(so 0.0025 with 60 ideal topics still demands at least one new topic,
while 0.02 with 60 demands ceil(1.2) = 2).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from .exceptions import ConstraintError
from .similarity import SimilarityMode


class RecommendationMode(enum.Enum):
    """How the learned Q-table is traversed at recommendation time.

    ``Q_ONLY`` is the literal Algorithm-1 traversal (argmax of the
    stored Q value); ``LOOKAHEAD`` recomputes the immediate Eq. 2 reward
    in the actual plan context and adds the discounted best continuation
    from the table — same learned policy, less state aliasing (states
    are single items, so stored Q entries average over every prefix that
    ever reached that item).
    """

    Q_ONLY = "q_only"
    LOOKAHEAD = "lookahead"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RewardWeights:
    """Weights of the linear reward mix (Equation 2).

    ``delta`` scales the interleaving-similarity term and ``beta`` the
    item-type weight term; the paper requires ``delta + beta = 1``.
    ``w_primary``/``w_secondary`` weigh primary vs secondary items with
    ``w_primary + w_secondary = 1`` and ``w_primary > w_secondary`` (the
    inequality is what makes Theorem 1's Case-II argument go through).
    ``category_weights`` generalizes the pair to Univ-2's six
    sub-discipline weights w1..w6 keyed by category name.
    """

    delta: float = 0.8
    beta: float = 0.2
    w_primary: float = 0.6
    w_secondary: float = 0.4
    category_weights: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not math.isclose(self.delta + self.beta, 1.0, abs_tol=1e-9):
            raise ConstraintError(
                f"delta + beta must equal 1, got {self.delta} + {self.beta}"
            )
        if not math.isclose(
            self.w_primary + self.w_secondary, 1.0, abs_tol=1e-9
        ):
            raise ConstraintError(
                f"w_primary + w_secondary must equal 1, got "
                f"{self.w_primary} + {self.w_secondary}"
            )
        if min(self.delta, self.beta, self.w_primary, self.w_secondary) < 0:
            raise ConstraintError("reward weights must be non-negative")

    @property
    def category_weight_map(self) -> Dict[str, float]:
        """Category weights as a dict (possibly empty)."""
        return dict(self.category_weights)

    @classmethod
    def with_categories(
        cls,
        weights: Mapping[str, float],
        delta: float = 0.8,
        beta: float = 0.2,
    ) -> "RewardWeights":
        """Univ-2-style weights, one per sub-discipline category."""
        total = sum(weights.values())
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ConstraintError(
                f"category weights must sum to 1, got {total:g}"
            )
        return cls(
            delta=delta,
            beta=beta,
            category_weights=tuple(sorted(weights.items())),
        )


@dataclass(frozen=True)
class PlannerConfig:
    """All RL-Planner hyper-parameters in one immutable object.

    Attributes
    ----------
    episodes:
        ``N`` — number of learning episodes.
    learning_rate:
        ``alpha`` of the SARSA update.
    discount:
        ``gamma`` of the SARSA update.
    coverage_threshold:
        ``epsilon`` — topic-coverage acceptance threshold (count if >= 1,
        fraction of ``|T_ideal|`` if < 1; see module docstring).
    weights:
        :class:`RewardWeights` (delta/beta/w1/w2 or category weights).
    similarity:
        AVERAGE (Eq. 7) or MINIMUM aggregation inside the reward.
    exploration:
        epsilon of the epsilon-greedy behaviour policy during learning.
        ``0.0`` reproduces the paper's purely reward-greedy Algorithm 1.
    mask_invalid_actions:
        When True (default), actions failing the Eq. 3/4 gates (theta=0:
        no new ideal-topic coverage, or unsatisfied antecedent gap) are
        excluded from the action set during learning *and*
        recommendation, falling back to the unmasked set only when no
        gated action exists.  This operationalizes Section III-B-1's
        "the action is valid only if ..." wording and is what makes
        Theorem 1 hold in practice; the ablation bench turns it off.
    lookahead_weight:
        Weight of the discounted-future Q term in LOOKAHEAD
        recommendation; ``None`` uses ``discount``.  Tuned per dataset
        like the other Table III parameters — long-horizon tasks with
        per-category quotas (Univ-2) want a small weight because stored
        Q values, aliased over prefixes, are noisier there.
    portfolio:
        When True (default) the recommender rolls out both the
        lookahead traversal and the pure gated-greedy traversal
        (lookahead weight 0) and returns whichever plan scores higher
        under the task's own scorer — information the planner already
        holds (the template and hard constraints are its inputs).
        Stabilizes the single-plan variance of greedy Q traversals.
    seed:
        RNG seed for tie-breaking and exploration; ``None`` = nondeterministic.
    qtable_backend:
        Q-table storage backend: ``"dense"`` (the |I| x |I| matrix),
        ``"sparse"`` (dict-of-rows, memory proportional to learned
        entries), or ``"auto"`` (default — dense below
        ``repro.core.qtable.SPARSE_BACKEND_THRESHOLD`` items, sparse at
        or above it).  Purely a representation choice: both backends
        produce bit-identical Q-values and plans.
    candidate_top_k:
        When set, action masking prunes the fully-gated candidate tier
        to the top ``k`` feasible actions by their exact reward before
        the reward batch scores them (plus boundary ties, so the argmax
        — including tie-break draws — is bit-identical to the unpruned
        path).  ``None`` (default) disables pruning.  Note that under
        epsilon-greedy exploration the *random* branch then samples from
        the pruned set, which changes learning trajectories — the knob
        therefore participates in policy fingerprints.
    """

    episodes: int = 500
    learning_rate: float = 0.75
    discount: float = 0.95
    coverage_threshold: float = 0.0025
    weights: RewardWeights = field(default_factory=RewardWeights)
    similarity: SimilarityMode = SimilarityMode.AVERAGE
    exploration: float = 0.1
    mask_invalid_actions: bool = True
    recommendation: RecommendationMode = RecommendationMode.LOOKAHEAD
    lookahead_weight: Optional[float] = None
    portfolio: bool = True
    seed: Optional[int] = 0
    qtable_backend: str = "auto"
    candidate_top_k: Optional[int] = None

    def __post_init__(self) -> None:
        if self.episodes <= 0:
            raise ConstraintError("episodes must be positive")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConstraintError("learning_rate must be in (0, 1]")
        if not 0.0 <= self.discount <= 1.0:
            raise ConstraintError("discount must be in [0, 1]")
        if self.coverage_threshold < 0:
            raise ConstraintError("coverage_threshold must be >= 0")
        if not 0.0 <= self.exploration <= 1.0:
            raise ConstraintError("exploration must be in [0, 1]")
        if self.qtable_backend not in ("auto", "dense", "sparse"):
            raise ConstraintError(
                "qtable_backend must be 'auto', 'dense', or 'sparse', "
                f"got {self.qtable_backend!r}"
            )
        if self.candidate_top_k is not None and self.candidate_top_k < 1:
            raise ConstraintError(
                "candidate_top_k must be >= 1 (or None to disable pruning)"
            )

    def replace(self, **changes: object) -> "PlannerConfig":
        """Copy with selected fields changed (sweep helper)."""
        return replace(self, **changes)

    def coverage_count_threshold(self, num_ideal_topics: int) -> int:
        """Resolve ``epsilon`` into a minimum count of new ideal topics.

        A fractional epsilon is scaled by ``|T_ideal|`` and rounded up;
        the result is never below 1 so that a zero-gain action can never
        pass the gate (matching the paper's "increase ... by at least a
        threshold" semantics).
        """
        if self.coverage_threshold >= 1.0:
            return int(math.ceil(self.coverage_threshold))
        return max(
            1, int(math.ceil(self.coverage_threshold * num_ideal_topics))
        )

    # ------------------------------------------------------------------
    # Table III presets
    # ------------------------------------------------------------------

    @classmethod
    def univ1_default(cls, seed: Optional[int] = 0) -> "PlannerConfig":
        """Default parameters for the Univ-1 course datasets (Table III),
        with the delta/beta/w1/w2 values the robustness study found best."""
        return cls(
            episodes=500,
            learning_rate=0.75,
            discount=0.95,
            coverage_threshold=0.0025,
            weights=RewardWeights(
                delta=0.6, beta=0.4, w_primary=0.6, w_secondary=0.4
            ),
            lookahead_weight=0.3,
            seed=seed,
        )

    @classmethod
    def univ2_default(
        cls,
        category_weights: Optional[Mapping[str, float]] = None,
        seed: Optional[int] = 0,
    ) -> "PlannerConfig":
        """Default parameters for the Univ-2 (Stanford-like) dataset."""
        weights: RewardWeights
        if category_weights is None:
            weights = RewardWeights(
                delta=0.8, beta=0.2, w_primary=0.6, w_secondary=0.4
            )
        else:
            weights = RewardWeights.with_categories(
                category_weights, delta=0.8, beta=0.2
            )
        return cls(
            episodes=100,
            learning_rate=0.75,
            discount=0.95,
            coverage_threshold=0.0025,
            weights=weights,
            lookahead_weight=0.02,
            seed=seed,
        )

    @classmethod
    def trip_default(cls, seed: Optional[int] = 0) -> "PlannerConfig":
        """Default parameters for the NYC/Paris trip datasets."""
        return cls(
            episodes=500,
            learning_rate=0.95,
            discount=0.75,
            coverage_threshold=1.0,
            weights=RewardWeights(
                delta=0.6, beta=0.4, w_primary=0.6, w_secondary=0.4
            ),
            seed=seed,
        )

# Table III's six Univ-2 sub-discipline weights (w1..w6) in the paper's
# listed order of sub-disciplines a..f.
UNIV2_CATEGORY_WEIGHTS: Dict[str, float] = {
    "math_stat_foundations": 0.25,
    "experimentation": 0.01,
    "scientific_computing": 0.15,
    "applied_ml_ds": 0.42,
    "practical_component": 0.01,
    "elective": 0.16,
}
