"""Transfer learning between catalogs (Section IV-D).

The paper learns a policy on one task (e.g. M.S. DS-CT, or NYC) and
applies it to another (M.S. CS, or Paris).  Since states/actions are
items, transfer amounts to re-keying the Q-table: entries whose state and
action items both exist in the target catalog carry over; everything else
starts at zero.  For disjoint item universes (NYC -> Paris), items are
matched by *theme signature* instead of id — two POIs correspond when
they cover the same theme set — which is the closest faithful analogue of
"apply the learned policy to the other city".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .catalog import Catalog
from .exceptions import TransferError
from .qtable import QTableBase, make_qtable


@dataclass(frozen=True)
class TransferReport:
    """Diagnostics of a policy transfer."""

    source_catalog: str
    target_catalog: str
    entries_total: int
    entries_transferred: int
    matched_items: int

    @property
    def entry_coverage(self) -> float:
        """Fraction of source Q entries that survived the transfer."""
        if self.entries_total == 0:
            return 0.0
        return self.entries_transferred / self.entries_total


@dataclass(frozen=True)
class TransferResult:
    """A transferred Q-table plus its report."""

    qtable: QTableBase
    report: TransferReport


def transfer_by_id(source: QTableBase, target: Catalog) -> TransferResult:
    """Re-key a Q-table onto ``target`` matching items by id.

    The natural mapping for the course-planning transfer: NJIT degree
    programs share a common course pool (CS 675 is a course in both DS-CT
    and M.S. CS), so Q mass learned on shared courses carries over
    directly.
    """
    entries = source.to_entries()
    table = make_qtable(target)
    transferred = 0
    matched = set()
    for (state_id, action_id), value in entries.items():
        if state_id in target and action_id in target:
            table.set(state_id, action_id, value)
            transferred += 1
            matched.add(state_id)
            matched.add(action_id)
    if transferred:
        # Mark the table as trained so recommendation does not refuse it.
        table.update_count = transferred
    report = TransferReport(
        source_catalog=source.catalog.name,
        target_catalog=target.name,
        entries_total=len(entries),
        entries_transferred=transferred,
        matched_items=len(matched & set(target.item_ids)),
    )
    return TransferResult(qtable=table, report=report)


def _theme_signature_index(catalog: Catalog) -> Dict[frozenset, List[str]]:
    """Group item ids by their frozen topic/theme set."""
    index: Dict[frozenset, List[str]] = defaultdict(list)
    for item in catalog:
        index[frozenset(item.topics)].append(item.item_id)
    return index


def build_theme_mapping(
    source: Catalog, target: Catalog
) -> Dict[str, Tuple[str, ...]]:
    """Map each source item id to target ids with the same theme set.

    Items whose exact signature has no counterpart fall back to the
    best-overlap match (largest Jaccard similarity of theme sets, ties by
    id order) when any overlap exists; otherwise they map to nothing.
    """
    target_index = _theme_signature_index(target)
    target_items = list(target)
    mapping: Dict[str, Tuple[str, ...]] = {}
    for item in source:
        signature = frozenset(item.topics)
        exact = target_index.get(signature)
        if exact:
            mapping[item.item_id] = tuple(exact)
            continue
        best_score = 0.0
        best_ids: List[str] = []
        for candidate in target_items:
            union = signature | candidate.topics
            if not union:
                continue
            score = len(signature & candidate.topics) / len(union)
            if score > best_score:
                best_score, best_ids = score, [candidate.item_id]
            elif score == best_score and score > 0.0:
                best_ids.append(candidate.item_id)
        mapping[item.item_id] = tuple(best_ids)
    return mapping


def transfer_by_theme(
    source: QTableBase,
    target: Catalog,
    mapping: Optional[Dict[str, Tuple[str, ...]]] = None,
) -> TransferResult:
    """Re-key a Q-table onto ``target`` matching items by theme signature.

    Used for the NYC <-> Paris transfer where the POI universes are
    disjoint but themes align.  When several target items share a
    signature, the transferred value is written to each pair (averaged
    over contributions when multiple source entries collide).
    """
    if mapping is None:
        mapping = build_theme_mapping(source.catalog, target)

    entries = source.to_entries()
    sums: Dict[Tuple[str, str], float] = defaultdict(float)
    counts: Dict[Tuple[str, str], int] = defaultdict(int)
    transferred = 0
    matched = set()
    for (state_id, action_id), value in entries.items():
        for t_state in mapping.get(state_id, ()):
            for t_action in mapping.get(action_id, ()):
                if t_state == t_action:
                    continue
                sums[(t_state, t_action)] += value
                counts[(t_state, t_action)] += 1
        if mapping.get(state_id) and mapping.get(action_id):
            transferred += 1
            matched.update(mapping[state_id])
            matched.update(mapping[action_id])

    table = make_qtable(target)
    for key, total in sums.items():
        table.set(key[0], key[1], total / counts[key])
    if sums:
        table.update_count = len(sums)

    report = TransferReport(
        source_catalog=source.catalog.name,
        target_catalog=target.name,
        entries_total=len(entries),
        entries_transferred=transferred,
        matched_items=len(matched),
    )
    return TransferResult(qtable=table, report=report)


def transfer_policy(
    source: QTableBase, target: Catalog, strategy: str = "auto"
) -> TransferResult:
    """Transfer a learned policy to another catalog.

    ``strategy`` is ``"id"``, ``"theme"``, or ``"auto"`` (id-based when
    the catalogs share items, theme-based otherwise).
    """
    if strategy == "id":
        return transfer_by_id(source, target)
    if strategy == "theme":
        return transfer_by_theme(source, target)
    if strategy == "auto":
        shared = source.catalog.shared_item_ids(target)
        if shared:
            return transfer_by_id(source, target)
        return transfer_by_theme(source, target)
    raise TransferError(f"unknown transfer strategy: {strategy!r}")
