"""Plan scoring, matching Section IV-A's "Measures".

* The score of a recommendation is Eq. 6/7 evaluated for each ideal
  composition ``I in IT`` with *the highest value selected as the final
  score*; a perfect, template-equal plan of length ``H`` therefore scores
  exactly ``H`` — matching the paper's gold-standard scores of 10
  (Univ-1), 15 (Univ-2), and 5 (trips, whose templates have 5 slots;
  this also coincides with the top of the POI popularity scale the paper
  mentions, and mean POI popularity is exposed separately via
  :func:`mean_popularity` for the itinerary tables).
* In both domains a plan that violates the hard constraints scores **0**
  (this is how OMEGA earns its zeros in Figure 1 and how infeasible sweep
  settings earn zeros in Tables IX/XIV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .constraints import TaskSpec
from .env import DomainMode
from .plan import Plan
from .similarity import max_similarity
from .validation import PlanValidator, ValidationReport


@dataclass(frozen=True)
class PlanScore:
    """A scored plan with its validation outcome attached."""

    value: float
    raw_value: float
    report: ValidationReport
    topic_coverage: float

    @property
    def is_valid(self) -> bool:
        """True when the plan satisfied every hard constraint."""
        return self.report.is_valid


class PlanScorer:
    """Scores plans for one (task, domain-mode) pair.

    Parameters
    ----------
    task:
        The TPP instance (provides the template and hard constraints).
    mode:
        COURSE uses the best-template similarity score; TRIP uses mean
        POI popularity.
    """

    def __init__(self, task: TaskSpec, mode: DomainMode = DomainMode.COURSE) -> None:
        self.task = task
        self.mode = mode
        self.validator = PlanValidator(
            task.hard, credits_are_budget=(mode is DomainMode.TRIP)
        )

    def raw_score(self, plan: Plan) -> float:
        """The domain score ignoring hard-constraint validity."""
        if len(plan) == 0:
            return 0.0
        return self._template_score(plan)

    def score(self, plan: Plan) -> PlanScore:
        """Full scoring: raw score gated to 0 when the plan is invalid."""
        report = self.validator.validate(plan)
        raw = self.raw_score(plan)
        value = raw if report.is_valid else 0.0
        return PlanScore(
            value=value,
            raw_value=raw,
            report=report,
            topic_coverage=plan.topic_coverage_of(self.task.soft.ideal_topics),
        )

    def gold_reference_score(self) -> float:
        """The maximum attainable score: a plan identical to some template
        permutation scores ``H`` (zeta = matches = k = H in Eq. 6)."""
        return float(self.task.hard.plan_length)

    # ------------------------------------------------------------------
    # Domain scores
    # ------------------------------------------------------------------

    def _template_score(self, plan: Plan) -> float:
        """Best-template Eq. 6 similarity of the complete plan."""
        sequence = plan.type_sequence()
        template = self.task.soft.template
        if len(sequence) > template.length:
            sequence = sequence[: template.length]
        return max_similarity(sequence, template)


def mean_popularity(plan: Plan) -> Optional[float]:
    """Mean POI popularity on the 1-5 scale (None when data is missing).

    Auxiliary itinerary metric used by the trip tables (the paper notes
    the highest POI popularity is 5); not part of the Figure-1 score.
    """
    values = []
    for item in plan.items:
        popularity = item.meta("popularity")
        if popularity is None:
            return None
        values.append(float(popularity))
    if not values:
        return None
    return sum(values) / len(values)


def score_plans(
    scorer: PlanScorer, plans: Tuple[Plan, ...]
) -> Tuple[PlanScore, ...]:
    """Score a batch of plans."""
    return tuple(scorer.score(plan) for plan in plans)


def average_score(scores: Tuple[PlanScore, ...]) -> float:
    """Mean gated score across runs (the quantity plotted in Figure 1)."""
    if not scores:
        return 0.0
    return sum(s.value for s in scores) / len(scores)


def validity_rate(scores: Tuple[PlanScore, ...]) -> float:
    """Fraction of plans that satisfied all hard constraints."""
    if not scores:
        return 0.0
    return sum(1 for s in scores if s.is_valid) / len(scores)
