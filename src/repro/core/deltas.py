"""Catalog/constraint delta events: the changing-world data model.

The paper plans once against a frozen catalog; real traffic closes items
mid-plan (full course sections, shuttered POIs) and tightens constraints
after the first ``k`` slots are committed.  This module defines the
event vocabulary for that churn and a :class:`CatalogView` that folds a
stream of events over an immutable base :class:`~repro.core.catalog.Catalog`
into a *live* catalog, re-materialized per event so a later ``reopen``
restores exactly the prerequisite edges a ``close`` pruned.

Event kinds
-----------
``CatalogDelta``:

* ``close`` — the item becomes unavailable for new placements.
* ``reopen`` — a previously closed item becomes available again.
* ``credit_change`` — the item's credit/cost value changes.

``ConstraintDelta``:

* ``min_credits`` — the task's credit floor (courses) or budget ceiling
  (trips) moves.  Constraint deltas are session-scoped: they retarget a
  :class:`~repro.serving.replan.ReplanSession`'s task, not the shared
  service catalog.

All dataclasses are frozen and carry a caller-assigned ``seq`` so replay
logs order identically across runs.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, FrozenSet, Optional, Tuple, Union

from .catalog import Catalog, SubsetFinding
from .exceptions import DataModelError, DeltaError
from .items import Item

#: Catalog-delta kinds.
DELTA_CLOSE = "close"
DELTA_REOPEN = "reopen"
DELTA_CREDIT_CHANGE = "credit_change"
CATALOG_DELTA_KINDS = (DELTA_CLOSE, DELTA_REOPEN, DELTA_CREDIT_CHANGE)

#: Constraint-delta kinds.
DELTA_MIN_CREDITS = "min_credits"
CONSTRAINT_DELTA_KINDS = (DELTA_MIN_CREDITS,)


@dataclasses.dataclass(frozen=True)
class CatalogDelta:
    """One availability/attribute change to a single catalog item."""

    kind: str
    item_id: str
    credits: Optional[float] = None
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CATALOG_DELTA_KINDS:
            raise DeltaError(
                f"unknown catalog delta kind {self.kind!r} "
                f"(expected one of {CATALOG_DELTA_KINDS})"
            )
        if not self.item_id:
            raise DeltaError("catalog delta requires an item_id")
        if self.kind == DELTA_CREDIT_CHANGE:
            if self.credits is None or self.credits <= 0:
                raise DeltaError(
                    f"credit_change delta for {self.item_id!r} requires a "
                    f"positive credits value, got {self.credits!r}"
                )
        elif self.credits is not None:
            raise DeltaError(
                f"{self.kind} delta for {self.item_id!r} must not carry "
                f"a credits value"
            )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "item": self.item_id,
            "seq": self.seq,
        }
        if self.credits is not None:
            out["credits"] = self.credits
        return out


@dataclasses.dataclass(frozen=True)
class ConstraintDelta:
    """One change to the task's hard constraints (session-scoped)."""

    kind: str
    value: float
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CONSTRAINT_DELTA_KINDS:
            raise DeltaError(
                f"unknown constraint delta kind {self.kind!r} "
                f"(expected one of {CONSTRAINT_DELTA_KINDS})"
            )
        if self.value <= 0:
            raise DeltaError(
                f"constraint delta {self.kind!r} requires a positive "
                f"value, got {self.value!r}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value, "seq": self.seq}


Delta = Union[CatalogDelta, ConstraintDelta]


def delta_from_payload(payload: object) -> Delta:
    """Decode a wire payload (one JSON object) into a typed delta.

    Accepts the shape produced by ``to_dict``.  Unknown fields are
    rejected so protocol typos fail loudly rather than silently no-op.
    """
    if not isinstance(payload, dict):
        raise DeltaError(f"delta payload must be an object, got {payload!r}")
    known = {"kind", "item", "credits", "value", "seq"}
    unknown = set(payload) - known
    if unknown:
        raise DeltaError(f"unknown delta field(s): {sorted(unknown)}")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise DeltaError(f"delta payload requires a string 'kind', got {kind!r}")
    seq_raw = payload.get("seq", 0)
    if not isinstance(seq_raw, int) or isinstance(seq_raw, bool):
        raise DeltaError(f"delta 'seq' must be an integer, got {seq_raw!r}")
    if kind in CONSTRAINT_DELTA_KINDS:
        value = payload.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise DeltaError(
                f"constraint delta {kind!r} requires a numeric 'value'"
            )
        return ConstraintDelta(kind=kind, value=float(value), seq=seq_raw)
    item = payload.get("item")
    if not isinstance(item, str):
        raise DeltaError(f"catalog delta {kind!r} requires a string 'item'")
    credits = payload.get("credits")
    if credits is not None:
        if not isinstance(credits, (int, float)) or isinstance(credits, bool):
            raise DeltaError("delta 'credits' must be numeric")
        credits = float(credits)
    return CatalogDelta(kind=kind, item_id=item, credits=credits, seq=seq_raw)


class CatalogView:
    """A mutable live view over an immutable base catalog.

    Folds :class:`CatalogDelta` events into a closed-item set plus a
    credit-override map and re-materializes the live catalog from the
    base each time, so closures prune prerequisite edges (through
    ``Catalog.subset(on_dangling="prune")``) and reopens restore them.
    Items whose every OR-group alternative is closed are dropped from
    the live catalog (they cannot be legally placed in a fresh plan);
    prerequisite references the *base* catalog never resolved remain
    tolerated, preserving the out-of-program-prereq contract.

    Thread-safe: ``apply`` serializes under an internal lock and swaps
    :attr:`live` atomically; readers never see a half-applied event.
    """

    def __init__(self, base: Catalog) -> None:
        self.base = base
        self._closed: set = set()
        self._credit_overrides: Dict[str, float] = {}
        self._version = 0
        self._live = base
        self._findings: Tuple[SubsetFinding, ...] = ()
        self._lock = threading.Lock()

    @property
    def live(self) -> Catalog:
        """The current materialized catalog (base until the first delta)."""
        return self._live

    @property
    def version(self) -> int:
        """Number of deltas applied so far."""
        return self._version

    @property
    def closed_ids(self) -> FrozenSet[str]:
        return frozenset(self._closed)

    @property
    def credit_overrides(self) -> Dict[str, float]:
        """Copy of the live credit-override map (item_id → credits)."""
        with self._lock:
            return dict(self._credit_overrides)

    @property
    def last_findings(self) -> Tuple[SubsetFinding, ...]:
        """Integrity findings from the most recent materialization."""
        return self._findings

    def state_payload(self) -> Dict[str, object]:
        """Canonical JSON-ready snapshot of the fold state.

        Everything :meth:`restore` needs to rebuild this view over the
        same base catalog — the write-ahead journal's snapshot format.
        Sorted/plain types only, so two views holding the same state
        serialize byte-identically.
        """
        with self._lock:
            return {
                "closed": sorted(self._closed),
                "credit_overrides": {
                    item_id: self._credit_overrides[item_id]
                    for item_id in sorted(self._credit_overrides)
                },
                "version": self._version,
            }

    def fork(self) -> "CatalogView":
        """An independent view over the same *base* seeded with the
        current closed-set/credit state.

        A session-scoped fork can keep folding deltas without mutating
        the view it was forked from, and — because it shares the
        pristine base — it resolves a later ``reopen`` of an item the
        parent view has already pruned from :attr:`live`.
        """
        clone = CatalogView(self.base)
        with self._lock:
            clone._closed = set(self._closed)
            clone._credit_overrides = dict(self._credit_overrides)
            clone._version = self._version
            clone._live = self._live
            clone._findings = self._findings
        return clone

    def resolve(self, item: Item) -> Item:
        """``item`` with any live credit override applied.

        Works for closed items too — used to re-cost a committed plan
        prefix whose items may no longer exist in the live catalog.
        """
        override = self._credit_overrides.get(item.item_id)
        if override is None or override == item.credits:
            return item
        return dataclasses.replace(item, credits=override)

    def apply(self, delta: CatalogDelta) -> Tuple[SubsetFinding, ...]:
        """Fold one delta into the view; returns the new findings."""
        if not isinstance(delta, CatalogDelta):
            raise DeltaError(
                f"CatalogView can only apply CatalogDelta events, "
                f"got {type(delta).__name__}"
            )
        if delta.item_id not in self.base:
            raise DeltaError(
                f"delta {delta.kind!r} references item {delta.item_id!r} "
                f"unknown to base catalog {self.base.name!r}"
            )
        with self._lock:
            prev_closed = set(self._closed)
            prev_overrides = dict(self._credit_overrides)
            prev_version = self._version
            if delta.kind == DELTA_CLOSE:
                self._closed.add(delta.item_id)
            elif delta.kind == DELTA_REOPEN:
                self._closed.discard(delta.item_id)
            else:  # credit_change
                assert delta.credits is not None
                self._credit_overrides[delta.item_id] = delta.credits
            open_ids = [
                item_id
                for item_id in self.base.item_ids
                if item_id not in self._closed
            ]
            if not open_ids:
                # Roll back: a catalog must keep at least one item.
                self._closed.discard(delta.item_id)
                raise DeltaError(
                    f"delta {delta.kind!r} on {delta.item_id!r} would "
                    f"close the last open item"
                )
            self._version += 1
            try:
                return self._materialize_locked(open_ids)
            except DataModelError as exc:
                # Pruning dangling prerequisites can empty the live
                # catalog even with open items left.  Roll the fold
                # back and reject as a DeltaError, so the refusal is
                # deterministic and journal replay skips it instead of
                # crash-looping on an unexpected exception type.
                # _live/_findings are untouched (assigned only on
                # success), so restoring the fold state suffices.
                self._closed = prev_closed
                self._credit_overrides = prev_overrides
                self._version = prev_version
                raise DeltaError(
                    f"delta {delta.kind!r} on {delta.item_id!r} would "
                    f"leave the live catalog empty after prerequisite "
                    f"pruning: {exc}"
                ) from exc

    def _materialize_locked(self, open_ids) -> Tuple[SubsetFinding, ...]:
        """Rebuild :attr:`live` from the base + fold state (lock held)."""
        source = self.base
        if self._credit_overrides:
            source = Catalog(
                tuple(self.resolve(item) for item in self.base.items),
                name=self.base.name,
                topic_vocabulary=self.base.topic_vocabulary,
                validate_prerequisites=False,
            )
        live, findings = source.subset_with_findings(
            open_ids,
            name=f"{self.base.name}@v{self._version}",
            on_dangling="prune",
        )
        self._live = live
        self._findings = findings
        return findings

    def restore(
        self,
        closed_ids,
        credit_overrides: Dict[str, float],
        version: int,
    ) -> Tuple[SubsetFinding, ...]:
        """Seed the view with recovered fold state, materializing once.

        The journal-replay path: instead of re-folding every delta since
        the beginning of time, a snapshot's ``(closed, overrides,
        version)`` triple is installed directly and the live catalog is
        rebuilt in a single materialization — byte-identical to the view
        that wrote the snapshot, because materialization is a pure
        function of that triple over the immutable base.
        """
        closed = set(closed_ids)
        overrides = dict(credit_overrides)
        if version < 0:
            raise DeltaError(f"snapshot version must be >= 0, got {version}")
        unknown = (closed | set(overrides)) - set(self.base.item_ids)
        if unknown:
            raise DeltaError(
                f"snapshot references item(s) unknown to base catalog "
                f"{self.base.name!r}: {sorted(unknown)}"
            )
        for item_id, credits in overrides.items():
            if not isinstance(credits, (int, float)) or credits <= 0:
                raise DeltaError(
                    f"snapshot credit override for {item_id!r} must be a "
                    f"positive number, got {credits!r}"
                )
        with self._lock:
            open_ids = [
                item_id
                for item_id in self.base.item_ids
                if item_id not in closed
            ]
            if not open_ids:
                raise DeltaError(
                    "snapshot closes every item in the base catalog"
                )
            self._closed = closed
            self._credit_overrides = {
                item_id: float(credits)
                for item_id, credits in overrides.items()
            }
            self._version = version
            if version == 0 and not closed and not overrides:
                self._live = self.base
                self._findings = ()
                return ()
            try:
                return self._materialize_locked(open_ids)
            except DataModelError as exc:
                raise DeltaError(
                    f"snapshot state leaves the live catalog empty "
                    f"after prerequisite pruning: {exc}"
                ) from exc
