"""The SARSA learner of Algorithm 1 (learning phase).

The paper adapts on-policy SARSA: during an episode the behaviour policy
selects the next item by maximizing the *immediate Equation-2 reward*
(Algorithm 1 lines 4 and 9), while the Q-table is updated with the usual
on-policy temporal-difference rule (Eq. 9)

    Q(s, e) <- Q(s, e) + alpha * [ r + gamma * Q(s', e') - Q(s, e) ]

We additionally support epsilon-greedy exploration on top of the
reward-greedy choice (``PlannerConfig.exploration``), which breaks the
determinism of pure greedy rollouts and lets repeated episodes visit more
of the state space — with ``exploration=0`` the learner is exactly the
paper's algorithm.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_registry
from .config import PlannerConfig
from .env import TPPEnvironment
from .exceptions import PlanningError
from .items import Item
from .qtable import QTable
from .reward import batch_rewards


class ActionSelection(enum.Enum):
    """Behaviour-policy flavour used while learning.

    REWARD_GREEDY is the paper's Algorithm 1 (argmax of immediate Eq. 2
    reward); Q_GREEDY is classic epsilon-greedy on the current Q-values
    (provided for the exploration ablation bench).
    """

    REWARD_GREEDY = "reward_greedy"
    Q_GREEDY = "q_greedy"


@dataclass
class EpisodeStats:
    """Per-episode learning diagnostics."""

    episode: int
    start_item_id: str
    length: int
    total_reward: float
    zero_reward_steps: int


@dataclass
class LearningResult:
    """Output of a learning run: the Q-table plus diagnostics."""

    qtable: QTable
    episodes: int
    elapsed_seconds: float
    stats: List[EpisodeStats] = field(default_factory=list)

    @property
    def mean_episode_reward(self) -> float:
        """Average cumulative reward per episode."""
        if not self.stats:
            return 0.0
        return sum(s.total_reward for s in self.stats) / len(self.stats)

    def reward_trace(self) -> List[float]:
        """Cumulative reward per episode in order (convergence plots)."""
        return [s.total_reward for s in self.stats]


class SarsaLearner:
    """On-policy SARSA over a :class:`TPPEnvironment`.

    Parameters
    ----------
    env:
        The episodic environment (catalog + task + reward).
    config:
        Hyper-parameters: episodes N, alpha, gamma, exploration epsilon,
        seed.
    selection:
        Behaviour-policy flavour; defaults to the paper's reward-greedy.
    registry:
        Explicit metrics sink; ``None`` resolves the process-active
        registry (:func:`repro.obs.get_registry`) at each :meth:`learn`
        call, so enabling observability after construction still takes
        effect.
    """

    def __init__(
        self,
        env: TPPEnvironment,
        config: PlannerConfig,
        selection: ActionSelection = ActionSelection.REWARD_GREEDY,
        registry=None,
    ) -> None:
        self.env = env
        self.config = config
        self.selection = selection
        self.registry = registry
        self._obs = registry if registry is not None else get_registry()
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    @property
    def rng_state(self) -> dict:
        """The behaviour-policy bit-generator state (JSON-serializable).

        Snapshotting this together with the Q-table and the episode
        counter is all a checkpoint needs: restoring it makes a resumed
        run draw the exact random sequence an uninterrupted run would.
        """
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    # ------------------------------------------------------------------
    # Behaviour policy
    # ------------------------------------------------------------------

    def _choose_action(
        self, qtable: QTable, state: Item, actions: Sequence[Item]
    ) -> Item:
        """Pick the next item per the behaviour policy."""
        if not actions:
            raise PlanningError("no valid actions available")
        with self._obs.span("sarsa.action_selection"):
            if (
                self.config.exploration > 0.0
                and self._rng.random() < self.config.exploration
            ):
                return actions[int(self._rng.integers(len(actions)))]
            if self.selection is ActionSelection.REWARD_GREEDY:
                return self._argmax_reward(state, actions)
            return self._argmax_q(qtable, state, actions)

    def _argmax_reward(self, state: Item, actions: Sequence[Item]) -> Item:
        """Algorithm-1 selection: maximize the immediate Eq. 2 reward.

        All actions are scored in one vectorized pass; ties are the
        exact-equality argmax set (``np.flatnonzero(r == r.max())``),
        broken uniformly at random.
        """
        builder = self.env.builder
        with self._obs.span("sarsa.batch_rewards"):
            rewards = batch_rewards(self.env.reward, builder, actions)
        winners = np.flatnonzero(rewards == rewards.max())
        if winners.size == 1:
            return actions[int(winners[0])]
        return actions[int(winners[int(self._rng.integers(winners.size))])]

    def _argmax_q(
        self, qtable: QTable, state: Item, actions: Sequence[Item]
    ) -> Item:
        """Classic greedy-on-Q selection with random tie-breaking."""
        ids = [a.item_id for a in actions]
        chosen = qtable.best_action(state.item_id, ids, rng=self._rng)
        return self.env.catalog[chosen]

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def learn(
        self,
        start_item_ids: Optional[Sequence[str]] = None,
        episodes: Optional[int] = None,
        qtable: Optional[QTable] = None,
        on_episode: Optional[Callable[[EpisodeStats], None]] = None,
        start_episode: int = 0,
    ) -> LearningResult:
        """Run ``episodes`` learning episodes and return the Q-table.

        Parameters
        ----------
        start_item_ids:
            Pool of episode starting items; a start is drawn uniformly
            per episode.  Defaults to every item in the catalog, which
            matches "learns Q values ... with different starting states".
        episodes:
            Override of ``config.episodes``.
        qtable:
            Warm-start table (transfer learning / incremental training).
        on_episode:
            Optional callback receiving :class:`EpisodeStats`.
        start_episode:
            Offset applied to the episode numbers in the emitted stats
            (checkpointed training runs ``learn`` in chunks and keep a
            global episode counter across them).
        """
        catalog = self.env.catalog
        if start_item_ids is None:
            starts: Tuple[str, ...] = catalog.item_ids
        else:
            starts = tuple(start_item_ids)
            for item_id in starts:
                if item_id not in catalog:
                    raise PlanningError(
                        f"start item {item_id!r} not in catalog "
                        f"{catalog.name!r}"
                    )
        if not starts:
            raise PlanningError("empty start-item pool")

        n_episodes = episodes if episodes is not None else self.config.episodes
        table = qtable if qtable is not None else QTable(catalog)
        stats: List[EpisodeStats] = []
        obs = self._obs = (
            self.registry if self.registry is not None else get_registry()
        )
        t0 = time.perf_counter()

        with obs.span("sarsa.learn"):
            for episode in range(n_episodes):
                start_id = starts[int(self._rng.integers(len(starts)))]
                episode_stats = self._run_episode(
                    table, start_episode + episode, start_id
                )
                stats.append(episode_stats)
                obs.inc("sarsa_episodes_total")
                obs.set_gauge(
                    "sarsa_episode_reward", episode_stats.total_reward
                )
                obs.set_gauge(
                    "sarsa_episode_length", episode_stats.length
                )
                obs.set_gauge(
                    "sarsa_episode_zero_reward_steps",
                    episode_stats.zero_reward_steps,
                )
                if on_episode is not None:
                    on_episode(episode_stats)

        elapsed = time.perf_counter() - t0
        return LearningResult(
            qtable=table,
            episodes=n_episodes,
            elapsed_seconds=elapsed,
            stats=stats,
        )

    def _run_episode(
        self, table: QTable, episode: int, start_id: str
    ) -> EpisodeStats:
        """One SARSA episode: roll out, updating Q along the way.

        Item ids are resolved to catalog indices once per chosen action
        and threaded through the loop — the TD update and bootstrap
        lookup never re-resolve an id.
        """
        env = self.env
        catalog = env.catalog
        state = env.reset(start_id)
        total_reward = 0.0
        zero_steps = 0

        actions = env.valid_actions()
        if not actions:
            # Dead start: no step is ever taken.  The episode length is
            # whatever reset() seeded (NOT a hardcoded 1 — an env may
            # seed more than the start item), and with zero steps taken
            # there are zero zero-reward steps, exactly as the normal
            # path would count them.
            self._obs.inc("sarsa_dead_start_episodes_total")
            return EpisodeStats(
                episode=episode,
                start_item_id=start_id,
                length=len(env.builder),
                total_reward=total_reward,
                zero_reward_steps=zero_steps,
            )
        action = self._choose_action(table, state, actions)
        s_idx = catalog.index_of(state.item_id)
        a_idx = catalog.index_of(action.item_id)

        while True:
            reward, done = env.step(action)
            self._obs.inc("sarsa_steps_total")
            total_reward += reward
            if reward == 0.0:
                zero_steps += 1

            next_state = action

            if done:
                table.td_update(
                    s_idx, a_idx, reward, self.config.learning_rate
                )
                break

            next_actions = env.valid_actions()
            if not next_actions:
                table.td_update(
                    s_idx, a_idx, reward, self.config.learning_rate
                )
                break
            next_action = self._choose_action(table, next_state, next_actions)
            next_a_idx = catalog.index_of(next_action.item_id)
            target = reward + self.config.discount * table.values[
                a_idx, next_a_idx
            ]
            table.td_update(s_idx, a_idx, target, self.config.learning_rate)

            state, action = next_state, next_action
            s_idx, a_idx = a_idx, next_a_idx

        return EpisodeStats(
            episode=episode,
            start_item_id=start_id,
            length=len(env.builder),
            total_reward=total_reward,
            zero_reward_steps=zero_steps,
        )
