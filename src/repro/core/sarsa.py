"""The SARSA learner of Algorithm 1 (learning phase).

The paper adapts on-policy SARSA: during an episode the behaviour policy
selects the next item by maximizing the *immediate Equation-2 reward*
(Algorithm 1 lines 4 and 9), while the Q-table is updated with the usual
on-policy temporal-difference rule (Eq. 9)

    Q(s, e) <- Q(s, e) + alpha * [ r + gamma * Q(s', e') - Q(s, e) ]

We additionally support epsilon-greedy exploration on top of the
reward-greedy choice (``PlannerConfig.exploration``), which breaks the
determinism of pure greedy rollouts and lets repeated episodes visit more
of the state space — with ``exploration=0`` the learner is exactly the
paper's algorithm.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_registry
from .config import PlannerConfig
from .env import TPPEnvironment
from .exceptions import PlanningError
from .items import Item
from .qtable import QTableBase, make_qtable
from .reward import batch_rewards


class ActionSelection(enum.Enum):
    """Behaviour-policy flavour used while learning.

    REWARD_GREEDY is the paper's Algorithm 1 (argmax of immediate Eq. 2
    reward); Q_GREEDY is classic epsilon-greedy on the current Q-values
    (provided for the exploration ablation bench).
    """

    REWARD_GREEDY = "reward_greedy"
    Q_GREEDY = "q_greedy"


@dataclass
class EpisodeStats:
    """Per-episode learning diagnostics."""

    episode: int
    start_item_id: str
    length: int
    total_reward: float
    zero_reward_steps: int


@dataclass
class LearningResult:
    """Output of a learning run: the Q-table plus diagnostics."""

    qtable: QTableBase
    episodes: int
    elapsed_seconds: float
    stats: List[EpisodeStats] = field(default_factory=list)

    @property
    def mean_episode_reward(self) -> float:
        """Average cumulative reward per episode."""
        if not self.stats:
            return 0.0
        return sum(s.total_reward for s in self.stats) / len(self.stats)

    def reward_trace(self) -> List[float]:
        """Cumulative reward per episode in order (convergence plots)."""
        return [s.total_reward for s in self.stats]


class SarsaLearner:
    """On-policy SARSA over a :class:`TPPEnvironment`.

    Parameters
    ----------
    env:
        The episodic environment (catalog + task + reward).
    config:
        Hyper-parameters: episodes N, alpha, gamma, exploration epsilon,
        seed.
    selection:
        Behaviour-policy flavour; defaults to the paper's reward-greedy.
    registry:
        Explicit metrics sink; ``None`` resolves the process-active
        registry (:func:`repro.obs.get_registry`) at each :meth:`learn`
        call, so enabling observability after construction still takes
        effect.
    """

    def __init__(
        self,
        env: TPPEnvironment,
        config: PlannerConfig,
        selection: ActionSelection = ActionSelection.REWARD_GREEDY,
        registry=None,
    ) -> None:
        self.env = env
        self.config = config
        self.selection = selection
        self.registry = registry
        self._obs = registry if registry is not None else get_registry()
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    @property
    def rng_state(self) -> dict:
        """The behaviour-policy bit-generator state (JSON-serializable).

        Snapshotting this together with the Q-table and the episode
        counter is all a checkpoint needs: restoring it makes a resumed
        run draw the exact random sequence an uninterrupted run would.
        """
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    # ------------------------------------------------------------------
    # Behaviour policy
    # ------------------------------------------------------------------

    def _choose_action(
        self, qtable: QTableBase, state: Item, actions: Sequence[Item]
    ) -> Item:
        """Pick the next item per the behaviour policy."""
        if not actions:
            raise PlanningError("no valid actions available")
        with self._obs.span("sarsa.action_selection"):
            if (
                self.config.exploration > 0.0
                and self._rng.random() < self.config.exploration
            ):
                return actions[int(self._rng.integers(len(actions)))]
            if self.selection is ActionSelection.REWARD_GREEDY:
                return self._argmax_reward(state, actions)
            return self._argmax_q(qtable, state, actions)

    def _argmax_reward(self, state: Item, actions: Sequence[Item]) -> Item:
        """Algorithm-1 selection: maximize the immediate Eq. 2 reward.

        All actions are scored in one vectorized pass; ties are the
        exact-equality argmax set (``np.flatnonzero(r == r.max())``),
        broken uniformly at random.
        """
        builder = self.env.builder
        with self._obs.span("sarsa.batch_rewards"):
            rewards = batch_rewards(self.env.reward, builder, actions)
        winners = np.flatnonzero(rewards == rewards.max())
        if winners.size == 1:
            return actions[int(winners[0])]
        return actions[int(winners[int(self._rng.integers(winners.size))])]

    def _argmax_q(
        self, qtable: QTableBase, state: Item, actions: Sequence[Item]
    ) -> Item:
        """Classic greedy-on-Q selection with random tie-breaking.

        Uses the index-based ``best_action_idx`` fast path (no per-call
        id re-resolution); falls back to the id-based lookup only when
        the state or an action is outside the catalog index.
        """
        index_map = self.env.catalog.index_map
        state_idx = index_map.get(state.item_id)
        if state_idx is not None:
            allowed_idx = np.empty(len(actions), dtype=np.int64)
            for j, action in enumerate(actions):
                idx = index_map.get(action.item_id)
                if idx is None:
                    break
                allowed_idx[j] = idx
            else:
                chosen_idx = qtable.best_action_idx(
                    state_idx, allowed_idx, rng=self._rng
                )
                return self.env.catalog.item_at(chosen_idx)
        ids = [a.item_id for a in actions]
        chosen = qtable.best_action(state.item_id, ids, rng=self._rng)
        return self.env.catalog[chosen]

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def learn(
        self,
        start_item_ids: Optional[Sequence[str]] = None,
        episodes: Optional[int] = None,
        qtable: Optional[QTableBase] = None,
        on_episode: Optional[Callable[[EpisodeStats], None]] = None,
        start_episode: int = 0,
        episode_batch: int = 1,
    ) -> LearningResult:
        """Run ``episodes`` learning episodes and return the Q-table.

        Parameters
        ----------
        start_item_ids:
            Pool of episode starting items; a start is drawn uniformly
            per episode.  Defaults to every item in the catalog, which
            matches "learns Q values ... with different starting states".
        episodes:
            Override of ``config.episodes``.
        qtable:
            Warm-start table (transfer learning / incremental training).
        on_episode:
            Optional callback receiving :class:`EpisodeStats`.
        start_episode:
            Offset applied to the episode numbers in the emitted stats
            (checkpointed training runs ``learn`` in chunks and keep a
            global episode counter across them).
        episode_batch:
            Number of episodes rolled out concurrently, with each
            round's reward-greedy action selections funnelled through a
            single stacked reward call (``reward_batch_multi``).  The
            default 1 runs the original per-episode loop byte-for-byte.
            With N > 1 episodes are processed in fixed groups of N and
            each group advances in *slot-major rounds*; training is
            deterministic under this documented interleaving (see
            :meth:`_run_episode_batch`), but draws the RNG in a
            different order than N=1, so the two settings produce
            different — individually reproducible — trajectories.
            Raises for learner subclasses that override the update rule.
        """
        catalog = self.env.catalog
        if episode_batch < 1:
            raise PlanningError("episode_batch must be >= 1")
        if (
            episode_batch > 1
            and type(self)._run_episode is not SarsaLearner._run_episode
        ):
            raise PlanningError(
                "episode_batch > 1 batches the SARSA update rule; "
                f"{type(self).__name__} overrides _run_episode and must "
                "train with episode_batch=1"
            )
        if start_item_ids is None:
            starts: Tuple[str, ...] = catalog.item_ids
        else:
            starts = tuple(start_item_ids)
            for item_id in starts:
                if item_id not in catalog:
                    raise PlanningError(
                        f"start item {item_id!r} not in catalog "
                        f"{catalog.name!r}"
                    )
        if not starts:
            raise PlanningError("empty start-item pool")

        n_episodes = episodes if episodes is not None else self.config.episodes
        table = (
            qtable
            if qtable is not None
            else make_qtable(catalog, backend=self.config.qtable_backend)
        )
        stats: List[EpisodeStats] = []
        obs = self._obs = (
            self.registry if self.registry is not None else get_registry()
        )
        t0 = time.perf_counter()

        def _emit(episode_stats: EpisodeStats) -> None:
            stats.append(episode_stats)
            obs.inc("sarsa_episodes_total")
            obs.set_gauge("sarsa_episode_reward", episode_stats.total_reward)
            obs.set_gauge("sarsa_episode_length", episode_stats.length)
            obs.set_gauge(
                "sarsa_episode_zero_reward_steps",
                episode_stats.zero_reward_steps,
            )
            if on_episode is not None:
                on_episode(episode_stats)

        with obs.span("sarsa.learn"):
            if episode_batch == 1:
                for episode in range(n_episodes):
                    start_id = starts[int(self._rng.integers(len(starts)))]
                    episode_stats = self._run_episode(
                        table, start_episode + episode, start_id
                    )
                    _emit(episode_stats)
            else:
                episode = 0
                while episode < n_episodes:
                    group = min(episode_batch, n_episodes - episode)
                    start_ids = [
                        starts[int(self._rng.integers(len(starts)))]
                        for _ in range(group)
                    ]
                    for episode_stats in self._run_episode_batch(
                        table, start_episode + episode, start_ids
                    ):
                        _emit(episode_stats)
                    episode += group

        elapsed = time.perf_counter() - t0
        return LearningResult(
            qtable=table,
            episodes=n_episodes,
            elapsed_seconds=elapsed,
            stats=stats,
        )

    def _run_episode(
        self, table: QTableBase, episode: int, start_id: str
    ) -> EpisodeStats:
        """One SARSA episode: roll out, updating Q along the way.

        Item ids are resolved to catalog indices once per chosen action
        and threaded through the loop — the TD update and bootstrap
        lookup never re-resolve an id.
        """
        env = self.env
        catalog = env.catalog
        state = env.reset(start_id)
        total_reward = 0.0
        zero_steps = 0

        actions = env.valid_actions()
        if not actions:
            # Dead start: no step is ever taken.  The episode length is
            # whatever reset() seeded (NOT a hardcoded 1 — an env may
            # seed more than the start item), and with zero steps taken
            # there are zero zero-reward steps, exactly as the normal
            # path would count them.
            self._obs.inc("sarsa_dead_start_episodes_total")
            return EpisodeStats(
                episode=episode,
                start_item_id=start_id,
                length=len(env.builder),
                total_reward=total_reward,
                zero_reward_steps=zero_steps,
            )
        action = self._choose_action(table, state, actions)
        s_idx = catalog.index_of(state.item_id)
        a_idx = catalog.index_of(action.item_id)

        while True:
            reward, done = env.step(action)
            self._obs.inc("sarsa_steps_total")
            total_reward += reward
            if reward == 0.0:
                zero_steps += 1

            next_state = action

            if done:
                table.td_update(
                    s_idx, a_idx, reward, self.config.learning_rate
                )
                break

            next_actions = env.valid_actions()
            if not next_actions:
                table.td_update(
                    s_idx, a_idx, reward, self.config.learning_rate
                )
                break
            next_action = self._choose_action(table, next_state, next_actions)
            next_a_idx = catalog.index_of(next_action.item_id)
            target = reward + self.config.discount * table.q_value(
                a_idx, next_a_idx
            )
            table.td_update(s_idx, a_idx, target, self.config.learning_rate)

            state, action = next_state, next_action
            s_idx, a_idx = a_idx, next_a_idx

        return EpisodeStats(
            episode=episode,
            start_item_id=start_id,
            length=len(env.builder),
            total_reward=total_reward,
            zero_reward_steps=zero_steps,
        )

    # ------------------------------------------------------------------
    # Episode-batched learning
    # ------------------------------------------------------------------

    def _run_episode_batch(
        self, table: QTableBase, first_episode: int, start_ids: Sequence[str]
    ) -> List[EpisodeStats]:
        """Roll out one group of episodes concurrently, slot-major.

        Episode ``first_episode + slot`` runs in slot ``slot`` on its
        own environment (same catalog/task/reward).  The group advances
        in rounds; each round runs three phases, every phase visiting
        the live slots in ascending order:

        1. **step** — apply each slot's pending action.
        2. **selection** — the surviving slots choose their next actions
           together: first the exploration coin (and, if it fires, the
           uniform pick) per slot in ascending order, then *one*
           ``reward_batch_multi`` call scoring every greedy slot's
           candidates, then the greedy tie-break draws in ascending slot
           order.  All draws come from ``self._rng``.
        3. **record** — each slot appends its transition
           ``(s, a, r, a')`` to a per-slot trace; no table write happens
           during the rollout.

        When every slot has retired, the recorded traces are **replayed
        in episode order**: slot 0's TD updates first, each target
        recomputed from the live table exactly as the sequential loop
        would.  Because the paper's reward-greedy behaviour policy never
        reads the Q-table, a group whose rollout consumes no RNG inside
        episodes (zero exploration, tie-free rewards) trains the
        *byte-identical* table the sequential path would — the replay
        applies the same updates in the same order against the same
        intermediate values.  With exploration, reward ties, or
        Q-greedy selection the batched path is still fully deterministic
        for a given seed, batch size, and start sequence, but consumes
        RNG in a different order than ``episode_batch=1`` (and Q-greedy
        selections read the table *without* the current group's pending
        updates), so the two paths then produce different —
        individually reproducible — trajectories that converge to
        equivalent policies.
        """
        env0 = self.env
        catalog = env0.catalog
        group = len(start_ids)
        envs = [
            TPPEnvironment(
                catalog, env0.task, env0.config, env0.mode, reward=env0.reward
            )
            for _ in range(group)
        ]
        stats: List[Optional[EpisodeStats]] = [None] * group
        totals = [0.0] * group
        zeros = [0] * group
        # slot -> (action to apply, s_idx, a_idx)
        pending: Dict[int, Tuple[Item, int, int]] = {}
        # Per-slot transition traces (s_idx, a_idx, reward, next_a_idx);
        # next_a_idx is None on the terminal transition.  Updates are
        # deferred to the episode-order replay below.
        traces: List[List[Tuple[int, int, float, Optional[int]]]] = [
            [] for _ in range(group)
        ]

        requests: List[Tuple[TPPEnvironment, int, np.ndarray]] = []
        slots_requesting: List[int] = []
        for slot in range(group):
            envs[slot].reset(start_ids[slot])
            cand_idx = self._candidate_idx(envs[slot])
            if cand_idx.size == 0:
                self._obs.inc("sarsa_dead_start_episodes_total")
                stats[slot] = EpisodeStats(
                    episode=first_episode + slot,
                    start_item_id=start_ids[slot],
                    length=len(envs[slot].builder),
                    total_reward=0.0,
                    zero_reward_steps=0,
                )
            else:
                slots_requesting.append(slot)
                requests.append(
                    (
                        envs[slot],
                        catalog.index_of(start_ids[slot]),
                        cand_idx,
                    )
                )
        chosen = self._select_actions_batch(table, requests)
        for slot, request, choice in zip(slots_requesting, requests, chosen):
            pending[slot] = (catalog.item_at(choice), request[1], choice)
        running = slots_requesting

        while running:
            results: Dict[int, Tuple[float, bool]] = {}
            for slot in running:
                action, s_idx, a_idx = pending[slot]
                reward, done = envs[slot].step(action)
                self._obs.inc("sarsa_steps_total")
                totals[slot] += reward
                if reward == 0.0:
                    zeros[slot] += 1
                results[slot] = (reward, done)

            continuing: List[int] = []
            requests = []
            for slot in running:
                reward, done = results[slot]
                action, s_idx, a_idx = pending[slot]
                next_cand = (
                    None if done else self._candidate_idx(envs[slot])
                )
                if next_cand is None or next_cand.size == 0:
                    traces[slot].append((s_idx, a_idx, reward, None))
                    stats[slot] = EpisodeStats(
                        episode=first_episode + slot,
                        start_item_id=start_ids[slot],
                        length=len(envs[slot].builder),
                        total_reward=totals[slot],
                        zero_reward_steps=zeros[slot],
                    )
                else:
                    continuing.append(slot)
                    requests.append((envs[slot], a_idx, next_cand))

            if continuing:
                chosen = self._select_actions_batch(table, requests)
                for slot, next_a_idx in zip(continuing, chosen):
                    action, s_idx, a_idx = pending[slot]
                    reward, _ = results[slot]
                    traces[slot].append((s_idx, a_idx, reward, next_a_idx))
                    pending[slot] = (
                        catalog.item_at(next_a_idx), a_idx, next_a_idx
                    )
            running = continuing

        # Episode-order replay: recompute each target against the live
        # table, exactly as the sequential loop interleaves bootstrap
        # reads and writes within and across episodes.
        for trace in traces:
            for s_idx, a_idx, reward, next_a_idx in trace:
                if next_a_idx is None:
                    target = reward
                else:
                    target = reward + self.config.discount * table.q_value(
                        a_idx, next_a_idx
                    )
                table.td_update(
                    s_idx, a_idx, target, self.config.learning_rate
                )

        return [s for s in stats if s is not None]

    def _candidate_idx(self, env: TPPEnvironment) -> np.ndarray:
        """Candidate catalog indices for ``env``'s current state.

        Index-space twin of ``env.valid_actions()``: same items, same
        (ascending catalog) order.  With masking off this is a pure
        index computation — no Item tuple is ever materialized, which
        is what lets the batched rollout stay O(1) Python objects per
        candidate at 10k+ items.  With masking on, the (already pruned
        or masked) Item tuple is resolved back to indices; those sets
        are small by construction.
        """
        if not env.config.mask_invalid_actions:
            return np.asarray(env.valid_action_indices(), dtype=np.int64)
        actions = env.valid_actions()
        index_map = env.catalog.index_map
        return np.fromiter(
            (index_map[action.item_id] for action in actions),
            dtype=np.int64,
            count=len(actions),
        )

    def _select_actions_batch(
        self,
        table: QTableBase,
        requests: Sequence[Tuple[TPPEnvironment, int, np.ndarray]],
    ) -> List[int]:
        """Behaviour-policy choices for many (env, s_idx, cand_idx) at once.

        Fully index-space: each request carries the state's catalog
        index and the candidate indices (ascending catalog order, the
        order ``valid_actions`` yields), and the chosen action comes
        back as a catalog index.  RNG order contract (all draws from
        ``self._rng``): exploration coins and uniform picks first, in
        request order; then — for reward-greedy slots — one stacked
        ``reward_batch_multi`` call (no draws) followed by the tie-break
        draws in request order.  Q-greedy slots draw their tie-breaks in
        request order instead of the reward call.
        """
        catalog = self.env.catalog
        chosen: List[int] = [-1] * len(requests)
        greedy: List[int] = []
        eps = self.config.exploration
        for j, (env, s_idx, cand_idx) in enumerate(requests):
            if eps > 0.0 and self._rng.random() < eps:
                chosen[j] = int(
                    cand_idx[int(self._rng.integers(cand_idx.size))]
                )
            else:
                greedy.append(j)
        if not greedy:
            return chosen

        if self.selection is ActionSelection.Q_GREEDY:
            for j in greedy:
                env, s_idx, cand_idx = requests[j]
                chosen[j] = table.best_action_idx(
                    s_idx, cand_idx, rng=self._rng
                )
            return chosen

        multi = getattr(self.env.reward, "reward_batch_multi", None)
        rewards_by_slot: Dict[int, np.ndarray] = {}
        if multi is not None:
            builders = [requests[j][0].builder for j in greedy]
            idx_lists = [requests[j][2] for j in greedy]
            with self._obs.span("sarsa.batch_rewards"):
                rewards_list = multi(builders, idx_lists)
            for j, rewards in zip(greedy, rewards_list):
                rewards_by_slot[j] = rewards
        else:
            # Custom reward wrappers without the stacked entry point
            # fall back to one batched call per slot.
            for j in greedy:
                env, s_idx, cand_idx = requests[j]
                actions = tuple(
                    catalog.item_at(int(i)) for i in cand_idx
                )
                with self._obs.span("sarsa.batch_rewards"):
                    rewards_by_slot[j] = batch_rewards(
                        env.reward, env.builder, actions
                    )
        for j in greedy:
            cand_idx = requests[j][2]
            rewards = rewards_by_slot[j]
            winners = np.flatnonzero(rewards == rewards.max())
            if winners.size == 1:
                chosen[j] = int(cand_idx[int(winners[0])])
            else:
                chosen[j] = int(
                    cand_idx[int(winners[int(self._rng.integers(winners.size))])]
                )
        return chosen
