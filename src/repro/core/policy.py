"""Plan recommendation from a learned Q-table (Algorithm 1, lines 15-24).

Given a learned policy (Q-table) and a starting item, the recommender
greedily traverses the table: from the current item it picks the
unvisited item with the maximum Q-value, repeating until the sequence
holds ``H`` items (courses) or the time budget is exhausted (trips).

Two traversal strategies are provided:

* ``Q_ONLY`` — the literal Algorithm 1: argmax of the stored Q value.
* ``LOOKAHEAD`` (default) — argmax of ``R(s, a) + gamma * max_b Q(a, b)``:
  the same learned table supplies the long-horizon value, but the
  immediate term is recomputed in the *actual* plan context.  Because a
  state is only the last item, stored Q entries average over every
  prefix that ever reached that item; re-evaluating Eq. 2 against the
  true prefix removes that aliasing and recovers the paper's reported
  score levels (the ablation bench compares both).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog
from .constraints import TaskSpec
from .env import DomainMode
from .exceptions import PlanningError, UntrainedPolicyError
from .items import Item
from .plan import Plan, PlanBuilder
from .qtable import QTableBase
from .config import RecommendationMode
from .reward import RewardFunction, batch_rewards


class GreedyPolicy:
    """Greedy Q-table traversal producing a plan.

    Parameters
    ----------
    qtable:
        The learned action-value table.
    task:
        Hard/soft constraints (provides the horizon and the trip budget).
    mode:
        Course or trip semantics for episode termination.
    rng_seed:
        Seed for random tie-breaking among equal Q-values (None = catalog
        order, fully deterministic).
    reward:
        Optional :class:`RewardFunction`; when provided, actions failing
        its Eq. 3/4 gates are masked out at recommendation time (the
        "valid action" semantics of Section III-B-1), falling back to
        the unmasked set only when no gated action exists.
    """

    def __init__(
        self,
        qtable: QTableBase,
        task: TaskSpec,
        mode: DomainMode = DomainMode.COURSE,
        rng_seed: Optional[int] = None,
        reward: Optional[RewardFunction] = None,
        recommendation: RecommendationMode = RecommendationMode.LOOKAHEAD,
        discount: float = 0.95,
        mask: bool = True,
    ) -> None:
        self.qtable = qtable
        self.task = task
        self.mode = mode
        self.reward = reward
        self.recommendation = recommendation
        self.discount = discount
        self.mask = mask
        if recommendation is RecommendationMode.LOOKAHEAD and reward is None:
            raise PlanningError(
                "LOOKAHEAD recommendation needs a reward function"
            )
        self._rng = (
            np.random.default_rng(rng_seed) if rng_seed is not None else None
        )

    @property
    def catalog(self) -> Catalog:
        """The catalog the Q-table is defined over."""
        return self.qtable.catalog

    def recommend(
        self,
        start_item_id: str,
        horizon: Optional[int] = None,
        require_trained: bool = True,
        allowed_item_ids: Optional[FrozenSet[str]] = None,
    ) -> Plan:
        """Produce a plan of up to ``horizon`` items starting at the item.

        Parameters
        ----------
        start_item_id:
            The first item of the plan (``s_1`` of Table III).
        horizon:
            Override of the task's plan length (#primary + #secondary).
        require_trained:
            When True, refuse to recommend from a never-updated table
            (all-zero Q would otherwise yield an arbitrary plan).
        allowed_item_ids:
            Optional availability filter: only these ids may be chosen
            (and only they contribute continuation value).  Lets a
            policy trained on the full catalog serve a live universe
            where some items have closed, without retraining.
        """
        catalog = self.catalog
        if start_item_id not in catalog:
            raise PlanningError(
                f"start item {start_item_id!r} not in catalog "
                f"{catalog.name!r}"
            )
        if (
            allowed_item_ids is not None
            and start_item_id not in allowed_item_ids
        ):
            raise PlanningError(
                f"start item {start_item_id!r} is not in the allowed "
                f"(live) item set"
            )
        h = horizon if horizon is not None else self.task.hard.plan_length
        self._check_trained(require_trained, h)
        builder = PlanBuilder(catalog)
        builder.add(catalog[start_item_id])
        return self._extend(builder, start_item_id, h, allowed_item_ids)

    def complete(
        self,
        prefix_items: Sequence[Item],
        horizon: Optional[int] = None,
        require_trained: bool = True,
        allowed_item_ids: Optional[FrozenSet[str]] = None,
    ) -> Plan:
        """Extend a committed plan prefix to the horizon.

        The prefix items are placed verbatim (they may even be absent
        from the live universe — history is immutable); the traversal
        then continues from the last prefix item exactly as
        :meth:`recommend` would, optionally restricted to
        ``allowed_item_ids``.  Used by mid-plan replanning to redo only
        the suffix after an availability delta.
        """
        prefix = tuple(prefix_items)
        if not prefix:
            raise PlanningError("complete() requires a non-empty prefix")
        h = horizon if horizon is not None else self.task.hard.plan_length
        self._check_trained(require_trained, h)
        builder = PlanBuilder(self.catalog)
        for item in prefix:
            builder.add(item)
        return self._extend(builder, prefix[-1].item_id, h, allowed_item_ids)

    def _check_trained(self, require_trained: bool, horizon: int) -> None:
        if require_trained and self.qtable.update_count == 0 and horizon > 1:
            raise UntrainedPolicyError(
                "the Q-table has never been updated; train first or pass "
                "require_trained=False"
            )

    def _extend(
        self,
        builder: PlanBuilder,
        current: str,
        horizon: int,
        allowed_item_ids: Optional[FrozenSet[str]],
    ) -> Plan:
        while len(builder) < horizon:
            candidates = self._allowed_actions(builder, allowed_item_ids)
            if not candidates:
                break
            if self.recommendation is RecommendationMode.LOOKAHEAD:
                next_id = self._lookahead_choice(
                    builder, candidates, allowed_item_ids
                )
            else:
                next_id = self._q_only_choice(current, candidates)
            builder.add_by_id(next_id)
            current = next_id

        return builder.build()

    def _q_only_choice(self, current: str, candidates: Sequence[Item]) -> str:
        """Literal Algorithm-1 argmax of the stored Q row.

        Runs on catalog indices (``best_action_idx``) so the traversal
        never rebuilds id lists per step; equivalent to the id-based
        ``best_action`` — same winner set, order, and tie-break draws —
        which remains the fallback when ``current`` is a foreign prefix
        item outside the catalog index.
        """
        catalog = self.catalog
        index_map = catalog.index_map
        state_idx = index_map.get(current)
        if state_idx is None:
            return self.qtable.best_action(
                current, [c.item_id for c in candidates], rng=self._rng
            )
        cand_idx = np.fromiter(
            (index_map[item.item_id] for item in candidates),
            dtype=np.int64,
            count=len(candidates),
        )
        chosen = self.qtable.best_action_idx(state_idx, cand_idx, rng=self._rng)
        return catalog.item_at(chosen).item_id

    def _lookahead_choice(
        self,
        builder: PlanBuilder,
        candidates: Sequence[Item],
        allowed_item_ids: Optional[FrozenSet[str]] = None,
    ) -> str:
        """argmax over a of ``R(s, a) + gamma * max_b Q(a, b)``.

        The immediate term comes from the batched reward engine and the
        continuation term from the backend's ``best_continuation`` (a
        sliced vectorized ``max`` on the dense table, a stored-entry
        scan on the sparse one — identical results either way).
        """
        catalog = self.catalog
        remaining_idx = builder.remaining_indices()
        if allowed_item_ids is not None:
            # Closed items must not contribute continuation value either.
            keep = np.fromiter(
                (
                    catalog.item_at(int(i)).item_id in allowed_item_ids
                    for i in remaining_idx
                ),
                dtype=bool,
                count=len(remaining_idx),
            )
            remaining_idx = remaining_idx[keep]
        index_map = catalog.index_map
        cand_idx = np.fromiter(
            (index_map[item.item_id] for item in candidates),
            dtype=np.int64,
            count=len(candidates),
        )
        future = self.qtable.best_continuation(cand_idx, remaining_idx)

        rewards = batch_rewards(self.reward, builder, candidates)
        totals = rewards + self.discount * future

        best_value = -np.inf
        winners: list = []
        for action, total in zip(candidates, totals.tolist()):
            if total > best_value + 1e-12:
                best_value = total
                winners = [action.item_id]
            elif abs(total - best_value) <= 1e-12:
                winners.append(action.item_id)
        if len(winners) > 1 and self._rng is not None:
            return winners[int(self._rng.integers(len(winners)))]
        return winners[0]

    def _allowed_actions(
        self,
        builder: PlanBuilder,
        allowed_item_ids: Optional[FrozenSet[str]] = None,
    ) -> Tuple[Item, ...]:
        """Unvisited items (trip mode: also within the time budget),
        gate-masked when a reward function is attached."""
        remaining = builder.remaining_items()
        if allowed_item_ids is not None:
            remaining = tuple(
                item
                for item in remaining
                if item.item_id in allowed_item_ids
            )
        if self.mode is DomainMode.TRIP:
            budget_left = self.task.hard.min_credits - builder.total_credits
            remaining = tuple(
                item
                for item in remaining
                if item.credits <= budget_left + 1e-9
            )
        if self.mask and self.reward is not None:
            return self.reward.mask_actions(builder, remaining)
        return remaining

    def recommend_many(
        self, start_item_ids: Sequence[str], horizon: Optional[int] = None
    ) -> Tuple[Plan, ...]:
        """Recommend one plan per starting item."""
        return tuple(
            self.recommend(start, horizon=horizon) for start in start_item_ids
        )
