"""Plan (trajectory) representation.

A *plan* is an ordered sequence of items — the trajectory ``H`` of the
CMDP.  :class:`PlanBuilder` is the mutable, incremental form used while an
episode unfolds (it maintains the running topic-coverage vector
``T_current`` of Section III-B-1 and item positions for gap checks);
:class:`Plan` is the immutable result handed to validators, scorers, and
users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog
from .constraints import InterleavingTemplate
from .exceptions import PlanningError
from .items import Item, ItemType
from .similarity import IncrementalSimilarity, SimilarityMode, type_sequence


@dataclass(frozen=True)
class Plan:
    """An immutable ordered sequence of items.

    Attributes
    ----------
    items:
        The recommended items, in order.
    catalog_name:
        Name of the catalog the plan was drawn from (for reports).
    """

    items: Tuple[Item, ...]
    catalog_name: str = ""

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self.items)

    def __getitem__(self, index: int) -> Item:
        return self.items[index]

    @property
    def item_ids(self) -> Tuple[str, ...]:
        """Ids of the plan's items, in order."""
        return tuple(item.item_id for item in self.items)

    @property
    def total_credits(self) -> float:
        """Sum of ``cr_m`` over the plan (credits or visit hours)."""
        return sum(item.credits for item in self.items)

    @property
    def num_primary(self) -> int:
        """Number of primary items in the plan."""
        return sum(1 for item in self.items if item.is_primary)

    @property
    def num_secondary(self) -> int:
        """Number of secondary items in the plan."""
        return sum(1 for item in self.items if item.is_secondary)

    def type_sequence(self) -> Tuple[ItemType, ...]:
        """The primary/secondary label string of the plan."""
        return type_sequence(self.items)

    def covered_topics(self) -> FrozenSet[str]:
        """Union of topics covered by the plan's items (``T_current``)."""
        out: set = set()
        for item in self.items:
            out |= item.topics
        return frozenset(out)

    def topic_coverage_of(self, ideal_topics: FrozenSet[str]) -> float:
        """Fraction of ``T_ideal`` covered by the plan, in [0, 1]."""
        if not ideal_topics:
            return 1.0
        return len(self.covered_topics() & ideal_topics) / len(ideal_topics)

    def positions(self) -> Dict[str, int]:
        """Map item id -> 0-based position in the plan."""
        return {item.item_id: i for i, item in enumerate(self.items)}

    def credits_by_category(self) -> Dict[str, float]:
        """Total credits per :attr:`Item.category` (None bucket omitted)."""
        out: Dict[str, float] = {}
        for item in self.items:
            if item.category is not None:
                out[item.category] = out.get(item.category, 0.0) + item.credits
        return out

    def describe(self) -> str:
        """One-line arrow-joined rendering like the paper's Table V."""
        return " -> ".join(
            f"{item.item_id}:{item.item_type.value}" for item in self.items
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.describe()


class PlanBuilder:
    """Mutable, incremental plan under construction.

    Tracks everything the reward function and environment need in O(1)
    per step: the visited set, running credits, the current topic set,
    and per-item positions.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._items: List[Item] = []
        self._positions: Dict[str, int] = {}
        self._topics: set = set()
        self._total_credits: float = 0.0
        self._num_primary: int = 0
        self._sim_states: Dict[Tuple[int, str], IncrementalSimilarity] = {}

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def catalog(self) -> Catalog:
        """The catalog items are drawn from."""
        return self._catalog

    @property
    def items(self) -> Tuple[Item, ...]:
        """Items added so far, in order."""
        return tuple(self._items)

    @property
    def last_item(self) -> Optional[Item]:
        """The most recently added item (None for an empty plan)."""
        return self._items[-1] if self._items else None

    @property
    def total_credits(self) -> float:
        """Running credit/visit-time total."""
        return self._total_credits

    @property
    def num_primary(self) -> int:
        """Number of primary items added so far (maintained in O(1))."""
        return self._num_primary

    @property
    def covered_topics(self) -> FrozenSet[str]:
        """The running ``T_current`` set."""
        return frozenset(self._topics)

    @property
    def positions(self) -> Dict[str, int]:
        """Map of item id -> position for items added so far."""
        return dict(self._positions)

    def contains(self, item_id: str) -> bool:
        """True if the item was already added (the visited set ``W``)."""
        return item_id in self._positions

    def type_sequence(self) -> Tuple[ItemType, ...]:
        """Primary/secondary label string of the partial plan."""
        return type_sequence(self._items)

    def new_topics(self, item: Item) -> FrozenSet[str]:
        """Topics ``item`` would add: ``T_{i+1}^current \\ T_i^current``."""
        return frozenset(item.topics - self._topics)

    def remaining_items(self) -> Tuple[Item, ...]:
        """Catalog items not yet in the plan (the action set at this state)."""
        return tuple(
            item
            for item in self._catalog
            if item.item_id not in self._positions
        )

    def remaining_indices(self) -> np.ndarray:
        """Catalog indices of the unvisited items, ascending.

        Ascending index order equals catalog order, so
        ``catalog.item_at`` over this array reproduces
        :meth:`remaining_items` exactly.
        """
        index_map = self._catalog.index_map
        mask = np.ones(len(self._catalog), dtype=bool)
        for item_id in self._positions:
            idx = index_map.get(item_id)
            if idx is not None:
                mask[idx] = False
        return np.flatnonzero(mask)

    def similarity_state(
        self, template: InterleavingTemplate, mode: SimilarityMode
    ) -> IncrementalSimilarity:
        """The incremental Eq. 6/7 state for ``(template, mode)``.

        Created on first request (replaying the current prefix) and kept
        in sync by :meth:`add` / :meth:`reset` afterwards, so reward
        evaluations never rescan the prefix.
        """
        key = (id(template), mode.value)
        state = self._sim_states.get(key)
        if state is None:
            state = IncrementalSimilarity(template, mode)
            for item in self._items:
                state.append(item.item_type)
            self._sim_states[key] = state
        return state

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, item: Item) -> None:
        """Append ``item`` to the plan.

        Raises
        ------
        PlanningError
            If the item was already added (plans never repeat items —
            the agent "can go to any other items except the ones chosen
            already").
        """
        if item.item_id in self._positions:
            raise PlanningError(
                f"item {item.item_id!r} is already in the plan"
            )
        self._positions[item.item_id] = len(self._items)
        self._items.append(item)
        self._topics |= item.topics
        self._total_credits += item.credits
        if item.is_primary:
            self._num_primary += 1
        for state in self._sim_states.values():
            state.append(item.item_type)

    def add_by_id(self, item_id: str) -> None:
        """Append the catalog item with the given id."""
        self.add(self._catalog[item_id])

    def build(self) -> Plan:
        """Freeze the current state into an immutable :class:`Plan`."""
        return Plan(items=tuple(self._items), catalog_name=self._catalog.name)

    def reset(self) -> None:
        """Clear all state for a fresh episode."""
        self._items.clear()
        self._positions.clear()
        self._topics.clear()
        self._total_credits = 0.0
        self._num_primary = 0
        self._sim_states.clear()


def plan_from_ids(catalog: Catalog, item_ids: Sequence[str]) -> Plan:
    """Convenience: build a :class:`Plan` from a list of item ids."""
    builder = PlanBuilder(catalog)
    for item_id in item_ids:
        builder.add_by_id(item_id)
    return builder.build()
