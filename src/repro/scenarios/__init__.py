"""Dynamic-world scenario generators (availability churn, replanning).

This package turns the static benchmark catalogs into *changing worlds*:
seeded, replayable schedules of :class:`~repro.core.deltas.CatalogDelta`
events (closures, reopenings, credit changes) that the serving layer
must survive mid-plan.  Schedules are pure data — generating one twice
with the same seed yields byte-identical ``to_dict()`` forms, which is
what the determinism drills in the benchmarks assert.
"""

from .churn import (
    ChurnEvent,
    ChurnSchedule,
    burst_schedule,
    poisson_schedule,
    prereq_cut_schedule,
    schedule_from_spec,
)

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "burst_schedule",
    "poisson_schedule",
    "prereq_cut_schedule",
    "schedule_from_spec",
]
