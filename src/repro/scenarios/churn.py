"""Seeded availability-churn schedules over a catalog.

A *schedule* is an ordered list of :class:`ChurnEvent`s, each pairing a
progress fraction ``at`` in ``[0, 1]`` (how far through a load run or a
plan execution the event fires) with one
:class:`~repro.core.deltas.CatalogDelta`.  Three generators cover the
robustness drills:

* :func:`poisson_schedule` — background churn: closure and reopening
  arrivals from two merged Poisson processes, the steady drizzle of a
  changing world.
* :func:`prereq_cut_schedule` — adversarial cuts: close the most
  load-bearing antecedents (ranked by dependent count) so prerequisite
  chains behind committed prefixes go dark all at once.
* :func:`burst_schedule` — correlated bursts: several closures landing
  together at burst windows (aligned with the load generator's burst
  arrival phases), optionally healing at the window's end.

Everything is driven by a seeded ``random.Random`` over *sorted* item-id
pools and fraction timestamps — no wall clock anywhere — so the same
seed always produces a byte-identical schedule, and a recorded run can
be replayed exactly (the same property :class:`~repro.chaos` fault
schedules have).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.catalog import Catalog
from ..core.deltas import (
    DELTA_CLOSE,
    DELTA_REOPEN,
    CatalogDelta,
)
from ..core.plan import Plan

#: Schedule kinds (the generator that produced it).
KIND_POISSON = "poisson"
KIND_PREREQ_CUT = "cut"
KIND_BURST = "burst"


@dataclasses.dataclass(frozen=True)
class ChurnEvent:
    """One delta armed to fire at a progress fraction of a run."""

    at: float
    delta: CatalogDelta

    def __post_init__(self) -> None:
        if not 0.0 <= self.at <= 1.0:
            raise ValueError(
                f"event fraction must be in [0, 1], got {self.at}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (determinism drills compare these)."""
        return {"at": round(self.at, 9), "delta": self.delta.to_dict()}


@dataclasses.dataclass(frozen=True)
class ChurnSchedule:
    """An ordered, replayable list of churn events."""

    kind: str
    seed: int
    events: Tuple[ChurnEvent, ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    def events_until(self, progress: float) -> Tuple[ChurnEvent, ...]:
        """Events whose fraction is ``<= progress`` (in order)."""
        return tuple(e for e in self.events if e.at <= progress)

    def split(
        self, at: float
    ) -> Tuple["ChurnSchedule", "ChurnSchedule"]:
        """Cut the schedule at a progress fraction: ``(before, after)``.

        The restart drill's knife: apply the ``before`` half, kill -9
        the process, recover, then apply the ``after`` half — both
        halves keep the original kind/seed so replayed decision logs
        and journal seqs line up with an uncut run.
        """
        before = tuple(e for e in self.events if e.at <= at)
        after = tuple(e for e in self.events if e.at > at)
        return (
            dataclasses.replace(self, events=before),
            dataclasses.replace(self, events=after),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form of the whole schedule."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }


def _open_pool(catalog: Catalog, closed: set) -> List[str]:
    """Sorted ids still open (deterministic choice pool)."""
    return sorted(i for i in catalog.item_ids if i not in closed)


def poisson_schedule(
    catalog: Catalog,
    seed: int = 0,
    rate: float = 6.0,
    reopen_rate: float = 3.0,
    duration: float = 1.0,
    max_closed_fraction: float = 0.5,
) -> ChurnSchedule:
    """Background churn: merged Poisson closure/reopening processes.

    Parameters
    ----------
    rate / reopen_rate:
        Expected closure / reopening arrivals over ``duration`` (the
        whole run maps to the fraction axis, so these are per-run
        rates, not per-second).
    max_closed_fraction:
        Closures that would push the closed set past this fraction of
        the catalog are skipped (the world degrades, it never empties).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if reopen_rate < 0:
        raise ValueError("reopen_rate must be >= 0")
    rng = random.Random(seed)
    max_closed = int(max_closed_fraction * len(catalog))
    closed: set = set()
    events: List[ChurnEvent] = []
    seq = 0

    # Merge the two processes: draw arrival times for each, then walk
    # the combined timeline in order.
    arrivals: List[Tuple[float, str]] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t > duration:
            break
        arrivals.append((t, DELTA_CLOSE))
    t = 0.0
    while reopen_rate > 0:
        t += rng.expovariate(reopen_rate)
        if t > duration:
            break
        arrivals.append((t, DELTA_REOPEN))
    arrivals.sort()

    for when, kind in arrivals:
        if kind == DELTA_CLOSE:
            if len(closed) >= max_closed:
                continue
            pool = _open_pool(catalog, closed)
            if len(pool) <= 1:
                continue  # never close the last open item
            item_id = pool[rng.randrange(len(pool))]
            closed.add(item_id)
        else:
            if not closed:
                continue
            pool = sorted(closed)
            item_id = pool[rng.randrange(len(pool))]
            closed.discard(item_id)
        seq += 1
        events.append(
            ChurnEvent(
                at=when / duration,
                delta=CatalogDelta(kind=kind, item_id=item_id, seq=seq),
            )
        )
    return ChurnSchedule(
        kind=KIND_POISSON, seed=seed, events=tuple(events)
    )


def prereq_cut_schedule(
    catalog: Catalog,
    seed: int = 0,
    cuts: int = 2,
    plan: Optional[Plan] = None,
    executed: int = 0,
    at: float = 0.5,
) -> ChurnSchedule:
    """Adversarial prerequisite-graph cuts.

    Closes the ``cuts`` most load-bearing antecedents — items ranked by
    ``(-dependent_count, item_id)`` — all at the same fraction ``at``,
    so whole prerequisite chains go dark at once.  When a ``plan`` with
    an ``executed`` prefix is given, antecedents appearing *in the
    committed prefix itself* are ranked first: closing them is the
    worst case (the prefix is invalidated, not just the suffix), which
    is exactly what the acceptance drill wants to provoke.
    """
    if cuts < 1:
        raise ValueError("cuts must be >= 1")
    prefix_ids = (
        frozenset(plan.item_ids[:executed]) if plan is not None else frozenset()
    )
    candidates = sorted(
        catalog.antecedent_ids() & frozenset(catalog.item_ids)
    )
    if not candidates:
        # Degenerate catalog with no prerequisite edges: fall back to
        # cutting the lexicographically-first items so the drill still
        # exercises closures.
        candidates = sorted(catalog.item_ids)
    ranked = sorted(
        candidates,
        key=lambda i: (
            0 if i in prefix_ids else 1,
            -len(catalog.dependents_of(i)),
            i,
        ),
    )
    # Keep at least one item open no matter how aggressive the cut.
    chosen = ranked[: min(cuts, len(catalog) - 1)]
    rng = random.Random(seed)  # jitters fire order within the cut
    rng.shuffle(chosen)
    events = tuple(
        ChurnEvent(
            at=at,
            delta=CatalogDelta(
                kind=DELTA_CLOSE, item_id=item_id, seq=seq + 1
            ),
        )
        for seq, item_id in enumerate(chosen)
    )
    return ChurnSchedule(kind=KIND_PREREQ_CUT, seed=seed, events=events)


def burst_schedule(
    catalog: Catalog,
    seed: int = 0,
    every: float = 0.25,
    length: float = 0.1,
    per_burst: int = 2,
    duration: float = 1.0,
    reopen: bool = True,
) -> ChurnSchedule:
    """Correlated closures aligned with burst windows.

    Bursts start at ``every, 2*every, ...``; each closes ``per_burst``
    randomly-chosen open items at the window start and (when ``reopen``)
    restores them at the window end.  Aligning ``every``/``length`` with
    the load generator's burst arrival phase puts churn and traffic
    spikes on top of each other — the worst-case the shed-rather-than-
    serve-invalid acceptance drill measures.
    """
    if not 0.0 < every <= duration:
        raise ValueError("every must be in (0, duration]")
    if length < 0:
        raise ValueError("length must be >= 0")
    if per_burst < 1:
        raise ValueError("per_burst must be >= 1")
    rng = random.Random(seed)
    closed: set = set()
    events: List[ChurnEvent] = []
    seq = 0
    start = every
    while start <= duration + 1e-12:
        victims: List[str] = []
        for _ in range(per_burst):
            pool = _open_pool(catalog, closed)
            if len(pool) <= 1:
                break
            item_id = pool[rng.randrange(len(pool))]
            closed.add(item_id)
            victims.append(item_id)
            seq += 1
            events.append(
                ChurnEvent(
                    at=min(start / duration, 1.0),
                    delta=CatalogDelta(
                        kind=DELTA_CLOSE, item_id=item_id, seq=seq
                    ),
                )
            )
        if reopen:
            heal_at = min((start + length) / duration, 1.0)
            for item_id in victims:
                closed.discard(item_id)
                seq += 1
                events.append(
                    ChurnEvent(
                        at=heal_at,
                        delta=CatalogDelta(
                            kind=DELTA_REOPEN, item_id=item_id, seq=seq
                        ),
                    )
                )
        start += every
    return ChurnSchedule(kind=KIND_BURST, seed=seed, events=tuple(events))


# ----------------------------------------------------------------------
# Spec parsing (CLI / load generator surface)
# ----------------------------------------------------------------------

_SPEC_ALIASES = {
    "poisson": KIND_POISSON,
    "cut": KIND_PREREQ_CUT,
    "burst": KIND_BURST,
}


def _parse_kv(parts: Sequence[str], spec: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for part in parts:
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad churn spec {spec!r}: expected key=value, got {part!r}"
            )
        key, _, value = part.partition("=")
        try:
            out[key.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"bad churn spec {spec!r}: {value!r} is not a number"
            ) from None
    return out


def schedule_from_spec(catalog: Catalog, spec: str) -> ChurnSchedule:
    """Build a schedule from a compact CLI spec string.

    Formats (all numeric fields optional, seeded and deterministic)::

        poisson:rate=6,reopen=3,seed=0,max_closed=0.5
        cut:cuts=2,at=0.5,seed=0
        burst:every=0.25,len=0.1,per=2,seed=0,reopen=1
    """
    head, _, tail = spec.partition(":")
    kind = _SPEC_ALIASES.get(head.strip().lower())
    if kind is None:
        raise ValueError(
            f"unknown churn schedule kind {head!r} "
            f"(expected one of {sorted(_SPEC_ALIASES)})"
        )
    kv = _parse_kv(tail.split(","), spec)
    seed = int(kv.pop("seed", 0))
    if kind == KIND_POISSON:
        schedule = poisson_schedule(
            catalog,
            seed=seed,
            rate=kv.pop("rate", 6.0),
            reopen_rate=kv.pop("reopen", 3.0),
            max_closed_fraction=kv.pop("max_closed", 0.5),
        )
    elif kind == KIND_PREREQ_CUT:
        schedule = prereq_cut_schedule(
            catalog,
            seed=seed,
            cuts=int(kv.pop("cuts", 2)),
            at=kv.pop("at", 0.5),
        )
    else:
        schedule = burst_schedule(
            catalog,
            seed=seed,
            every=kv.pop("every", 0.25),
            length=kv.pop("len", 0.1),
            per_burst=int(kv.pop("per", 2)),
            reopen=bool(kv.pop("reopen", 1.0)),
        )
    if kv:
        raise ValueError(
            f"bad churn spec {spec!r}: unknown fields {sorted(kv)}"
        )
    return schedule
