"""Closed-loop and open-loop load generation for the planning server.

Two canonical load models, matching how serving papers report latency:

* **Closed loop** (:func:`closed_loop`) — ``concurrency`` synchronous
  clients, each issuing its next request the moment the previous one
  returns.  Offered load adapts to service capacity, so this measures
  *latency under a fixed multiprogramming level* — the 1/4/16-worker
  sweep in BENCH_serving.json.
* **Open loop** (:func:`open_loop`) — requests arrive on a seeded
  Poisson process at ``rate`` req/s regardless of how the server is
  doing, optionally with burst windows that multiply the rate.  Offered
  load does *not* back off, which is what actually exercises the
  bounded admission queue and the shedding path: a closed loop can
  never overload a server that sheds.

Both return one report dict (p50/p95/p99 latency over admitted
requests, throughput, outcome/rung/shed tallies, SLO attainment) ready
to be written into ``BENCH_serving.json`` or printed by the
``loadtest`` CLI.

Fault injection mid-load: pass ``fault_spec`` (the
:mod:`repro.runner.faults` grammar; rung indices are task indices —
``error@0:times=10`` breaks ten policy-rung calls) and ``fault_at``
(fraction of the run after which the injector is armed on the service).
The report records when it armed and what fired, so a chaos sweep can
assert "the ladder degraded and the run still completed".

The generator deliberately lives *behind* the server's public
``submit``/``handle`` surface — it measures what a remote client would
see (queueing included), not internal service time.
"""

from __future__ import annotations

import dataclasses
import json
import random
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..runner.faults import FaultInjector
from .facade import (
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_REJECTED,
    ServeRequest,
    ServeResult,
)
from .server import OUTCOME_SHED, PlanningServer

#: Outcomes that never reached a worker — excluded from latency
#: percentiles (their "latency" is the shed decision, microseconds).
NON_SERVICE_OUTCOMES = (OUTCOME_SHED, OUTCOME_REJECTED)

#: Outcomes that hand the caller a plan to act on.
SERVED_OUTCOMES = (OUTCOME_OK, OUTCOME_DEGRADED)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (len(sorted_values) - 1) * q
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


class _Recorder:
    """Thread-safe sample sink shared by all client/callback threads."""

    def __init__(self, slo_s: Optional[float]) -> None:
        self.slo_s = slo_s
        self._lock = threading.Lock()
        self.latencies_s: List[float] = []
        self.outcomes: Dict[str, int] = {}
        self.rungs: Dict[str, int] = {}
        self.slo_attained = 0
        self.errors = 0
        self.invalid_served = 0

    def record(self, outcome: str, rung: Optional[str],
               valid: bool, latency_s: float,
               invalid_served: bool = False) -> None:
        with self._lock:
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            if rung is not None:
                self.rungs[rung] = self.rungs.get(rung, 0) + 1
            if invalid_served:
                self.invalid_served += 1
            if outcome not in NON_SERVICE_OUTCOMES:
                self.latencies_s.append(latency_s)
                if valid and (
                    self.slo_s is None or latency_s <= self.slo_s
                ):
                    self.slo_attained += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def report(self, mode: str, wall_s: float,
               issued: int) -> Dict[str, Any]:
        with self._lock:
            latencies = sorted(self.latencies_s)
            outcomes = dict(self.outcomes)
            rungs = dict(self.rungs)
            attained = self.slo_attained
            errors = self.errors
            invalid_served = self.invalid_served
        completed = sum(outcomes.values())
        admitted = len(latencies)
        shed = outcomes.get(OUTCOME_SHED, 0)
        return {
            "mode": mode,
            "requests_issued": issued,
            "requests_completed": completed,
            "errors": errors,
            "wall_s": round(wall_s, 4),
            "throughput_rps": (
                round(completed / wall_s, 2) if wall_s > 0 else 0.0
            ),
            "outcomes": outcomes,
            "rungs": rungs,
            "shed_rate": round(shed / completed, 4) if completed else 0.0,
            "invalid_served": invalid_served,
            "latency_ms": {
                "count": admitted,
                "p50": round(1e3 * percentile(latencies, 0.50), 3),
                "p95": round(1e3 * percentile(latencies, 0.95), 3),
                "p99": round(1e3 * percentile(latencies, 0.99), 3),
                "mean": (
                    round(1e3 * sum(latencies) / admitted, 3)
                    if admitted else 0.0
                ),
                "max": (
                    round(1e3 * latencies[-1], 3) if latencies else 0.0
                ),
            },
            "slo": {
                "slo_s": self.slo_s,
                "attained": attained,
                "attainment": (
                    round(attained / completed, 4) if completed else 0.0
                ),
            },
        }


class _FaultArmer:
    """Arms a fault injector on the service once, at a run fraction."""

    def __init__(
        self,
        server: PlanningServer,
        spec: Optional[str],
        at_fraction: float,
    ) -> None:
        self.server = server
        self.spec = spec
        self.at_fraction = max(0.0, min(1.0, at_fraction))
        self.armed_at: Optional[int] = None
        self.injector: Optional[FaultInjector] = None
        self._lock = threading.Lock()

    def maybe_arm(self, progress: float, position: int) -> None:
        if self.spec is None or self.armed_at is not None:
            return
        with self._lock:
            if self.armed_at is not None or progress < self.at_fraction:
                return
            self.injector = FaultInjector.from_spec(self.spec)
            # The facade reads fault_injector per rung attempt, so a
            # plain attribute swap takes effect on in-flight traffic.
            self.server.service.fault_injector = self.injector
            self.armed_at = position

    def summary(self) -> Optional[Dict[str, Any]]:
        if self.spec is None:
            return None
        return {
            "spec": self.spec,
            "armed_at_request": self.armed_at,
            "fired": (
                self.injector.fired_counts() if self.injector else {}
            ),
        }


class _ChurnArmer:
    """Applies a churn schedule's due deltas as the run progresses.

    Mirrors :class:`_FaultArmer`: built from a compact spec string
    (``poisson:rate=6,seed=3`` / ``cut:cuts=2`` / ``burst:every=0.25``),
    it replays the seeded schedule against the server as the run's
    progress fraction crosses each event's ``at`` mark.  Deltas flow
    through :meth:`PlanningServer.apply_delta`, so the live catalog,
    the policy fingerprint, and every open replan session all see them
    — availability churn and traffic load on the same clock.
    """

    def __init__(
        self, server: PlanningServer, spec: Optional[str]
    ) -> None:
        self.server = server
        self.spec = spec
        self.schedule = None
        if spec is not None:
            # Imported lazily: the serving package stays importable
            # without the scenarios package on exotic install slices.
            from ..scenarios import schedule_from_spec

            self.schedule = schedule_from_spec(
                server.service.catalog, spec
            )
        self._applied = 0
        self._errors = 0
        self._lock = threading.Lock()

    def maybe_apply(self, progress: float) -> None:
        if self.schedule is None:
            return
        with self._lock:
            events = self.schedule.events
            while self._applied < len(events):
                event = events[self._applied]
                if event.at > progress:
                    break
                self._applied += 1
                try:
                    self.server.apply_delta(event.delta)
                except Exception:  # noqa: BLE001 - keep the run going
                    self._errors += 1

    def finish(self) -> None:
        """Fire any events the run ended before reaching."""
        self.maybe_apply(1.0)

    def summary(self) -> Optional[Dict[str, Any]]:
        if self.schedule is None:
            return None
        with self._lock:
            return {
                "spec": self.spec,
                "kind": self.schedule.kind,
                "seed": self.schedule.seed,
                "events": len(self.schedule),
                "applied": self._applied,
                "errors": self._errors,
                "catalog_version": self.server.service.catalog_version,
            }


def _served_invalid(
    server: PlanningServer, result: ServeResult
) -> bool:
    """True when a *served* plan references a closed item.

    The shed-rather-than-invalid drill: checked at completion time, so
    single-threaded (closed loop, concurrency 1) churn runs get an
    exact answer — deltas and requests interleave on one thread.
    """
    if result.outcome not in SERVED_OUTCOMES or result.plan is None:
        return False
    live = server.service.live_catalog
    return any(
        item_id not in live for item_id in result.plan.item_ids
    )


def _default_request_factory(
    deadline_s: Optional[float],
) -> Callable[[int], ServeRequest]:
    def factory(index: int) -> ServeRequest:
        return ServeRequest(deadline_s=deadline_s)

    return factory


def closed_loop(
    server: PlanningServer,
    concurrency: int,
    requests: int,
    deadline_s: Optional[float] = None,
    slo_s: Optional[float] = None,
    request_factory: Optional[Callable[[int], ServeRequest]] = None,
    fault_spec: Optional[str] = None,
    fault_at: float = 0.5,
    churn_spec: Optional[str] = None,
) -> Dict[str, Any]:
    """Closed-loop run: ``concurrency`` clients, ``requests`` total.

    Each client thread blocks in :meth:`PlanningServer.handle` and
    immediately issues the next request; a shared counter hands out
    request indices so the total is exact regardless of per-client
    speed.  ``request_factory(index)`` customizes the traffic mix.
    ``churn_spec`` arms a seeded availability-churn schedule that fires
    catalog deltas as the run progresses (see :mod:`repro.scenarios`).
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if requests < 1:
        raise ValueError("requests must be >= 1")
    factory = request_factory or _default_request_factory(deadline_s)
    recorder = _Recorder(slo_s)
    armer = _FaultArmer(server, fault_spec, fault_at)
    churn = _ChurnArmer(server, churn_spec)
    counter_lock = threading.Lock()
    issued = 0

    def next_index() -> Optional[int]:
        nonlocal issued
        with counter_lock:
            if issued >= requests:
                return None
            index = issued
            issued += 1
            return index

    def client() -> None:
        while True:
            index = next_index()
            if index is None:
                return
            armer.maybe_arm(index / requests, index)
            churn.maybe_apply(index / requests)
            request = factory(index)
            t0 = time.monotonic()
            try:
                result = server.handle(request)
            except Exception:  # noqa: BLE001 - keep other clients going
                recorder.record_error()
                continue
            recorder.record(
                result.outcome,
                result.rung,
                result.ok,
                time.monotonic() - t0,
                invalid_served=_served_invalid(server, result),
            )

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}")
        for i in range(concurrency)
    ]
    t_start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Fire any schedule tail the request clock never reached (events at
    # the very end of the run, e.g. a final-burst reopen at 1.0), so a
    # replayed run always ends in the schedule's terminal world state.
    churn.finish()
    report = recorder.report(
        "closed", time.monotonic() - t_start, issued
    )
    report["concurrency"] = concurrency
    report["faults"] = armer.summary()
    report["churn"] = churn.summary()
    return report


def open_loop(
    server: PlanningServer,
    rate: float,
    duration_s: float,
    deadline_s: Optional[float] = None,
    slo_s: Optional[float] = None,
    seed: int = 0,
    burst_every_s: Optional[float] = None,
    burst_len_s: float = 0.5,
    burst_factor: float = 4.0,
    request_factory: Optional[Callable[[int], ServeRequest]] = None,
    fault_spec: Optional[str] = None,
    fault_at: float = 0.5,
    churn_spec: Optional[str] = None,
) -> Dict[str, Any]:
    """Open-loop run: Poisson arrivals at ``rate`` req/s for
    ``duration_s`` seconds, never waiting for responses.

    Inter-arrival gaps are ``random.Random(seed).expovariate`` draws,
    so the arrival sequence is reproducible.  While inside a burst
    window (every ``burst_every_s`` seconds, for ``burst_len_s``) the
    instantaneous rate is multiplied by ``burst_factor`` — the square
    wave that knocks a queue sized for the average over its bound.

    Requests are fired through :meth:`PlanningServer.submit` with a
    completion callback, so arrival timing is independent of service
    latency (the defining property of the open loop).
    """
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1.0")
    factory = request_factory or _default_request_factory(deadline_s)
    recorder = _Recorder(slo_s)
    armer = _FaultArmer(server, fault_spec, fault_at)
    churn = _ChurnArmer(server, churn_spec)
    rng = random.Random(seed)
    pending: List[threading.Event] = []
    issued = 0

    def in_burst(elapsed: float) -> bool:
        if burst_every_s is None or burst_every_s <= 0:
            return False
        return (elapsed % burst_every_s) < burst_len_s

    t_start = time.monotonic()
    while True:
        elapsed = time.monotonic() - t_start
        if elapsed >= duration_s:
            break
        armer.maybe_arm(elapsed / duration_s, issued)
        churn.maybe_apply(elapsed / duration_s)
        current_rate = rate * (
            burst_factor if in_burst(elapsed) else 1.0
        )
        gap = rng.expovariate(current_rate)
        if elapsed + gap >= duration_s:
            break
        time.sleep(gap)
        index = issued
        issued += 1
        request = factory(index)
        t0 = time.monotonic()
        done = threading.Event()
        pending.append(done)

        def on_done(future, _t0=t0, _done=done) -> None:
            try:
                result = future.result()
            except Exception:  # noqa: BLE001 - count, keep loading
                recorder.record_error()
            else:
                recorder.record(
                    result.outcome,
                    result.rung,
                    result.ok,
                    time.monotonic() - _t0,
                    invalid_served=_served_invalid(server, result),
                )
            _done.set()

        try:
            server.submit(request).add_done_callback(on_done)
        except Exception:  # noqa: BLE001 - e.g. ServerClosed mid-run
            recorder.record_error()
            done.set()
    for done in pending:
        done.wait(timeout=60.0)
    churn.finish()
    report = recorder.report(
        "open", time.monotonic() - t_start, issued
    )
    report["rate_rps"] = rate
    report["burst"] = (
        None
        if burst_every_s is None
        else {
            "every_s": burst_every_s,
            "len_s": burst_len_s,
            "factor": burst_factor,
        }
    )
    report["faults"] = armer.summary()
    report["churn"] = churn.summary()
    return report


# ----------------------------------------------------------------------
# TCP clients: resilience against a restarting server
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded full jitter.

    Attempt ``n`` (0-based) sleeps ``uniform(0, min(cap_s, base_s *
    2**n))`` — the classic full-jitter curve that spreads a thundering
    herd of reconnecting clients across the restart window.  The jitter
    RNG is seeded per client, so a load run's retry timing is
    reproducible.
    """

    base_s: float = 0.05
    cap_s: float = 2.0
    max_attempts: int = 40
    seed: int = 0

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        ceiling = min(self.cap_s, self.base_s * (2 ** min(attempt, 30)))
        return rng.uniform(0.0, ceiling)


class ClientGaveUp(ConnectionError):
    """The retry budget ran out without reaching the server."""


class LineClient:
    """A JSON-lines TCP client that survives a server restart window.

    ``request`` sends one JSON object line and returns the reply
    object.  A connect refusal, reset, broken pipe, or mid-reply EOF
    triggers a capped-backoff reconnect and *resends the same payload*
    — at-least-once delivery, which is exactly what the server's
    journal seq-dedupe is built to absorb (a retried delta acks as a
    duplicate no-op; plan requests are read-only).

    Counters (read after the run):

    * ``retries`` — backoff sleeps taken (connect or resend).
    * ``reconnects`` — connections re-established after a loss (the
      initial connect is not counted).
    * ``restart_gap_seconds`` — longest wall-clock stretch from a
      connection loss to the reconnect that healed it: the observed
      server restart window.
    """

    def __init__(
        self,
        host: str,
        port: int,
        retry: Optional[RetryPolicy] = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry or RetryPolicy()
        self.timeout_s = timeout_s
        self._rng = random.Random(self.retry.seed)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ever_connected = False
        self.retries = 0
        self.reconnects = 0
        self.restart_gap_seconds = 0.0

    def _drop(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        gap_started: Optional[float] = None
        for attempt in range(self.retry.max_attempts):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
            except OSError:
                if gap_started is None:
                    gap_started = time.monotonic()
                self.retries += 1
                time.sleep(self.backoff_s(attempt))
                continue
            self._sock = sock
            self._file = sock.makefile("rwb")
            if self._ever_connected:
                self.reconnects += 1
            if gap_started is not None:
                self.restart_gap_seconds = max(
                    self.restart_gap_seconds,
                    time.monotonic() - gap_started,
                )
            self._ever_connected = True
            return
        raise ClientGaveUp(
            f"could not reach {self.host}:{self.port} after "
            f"{self.retry.max_attempts} attempts"
        )

    def backoff_s(self, attempt: int) -> float:
        return self.retry.backoff_s(attempt, self._rng)

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/reply exchange, retried across connection loss."""
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        loss_at: Optional[float] = None
        for attempt in range(self.retry.max_attempts):
            try:
                self._ensure_connected()
                assert self._file is not None
                self._file.write(line)
                self._file.flush()
                raw = self._file.readline()
                if not raw:
                    raise ConnectionResetError(
                        "server closed the connection mid-exchange"
                    )
                reply = json.loads(raw.decode("utf-8"))
                if loss_at is not None:
                    self.restart_gap_seconds = max(
                        self.restart_gap_seconds,
                        time.monotonic() - loss_at,
                    )
                return reply
            except ClientGaveUp:
                raise
            except (OSError, ValueError, UnicodeDecodeError):
                if loss_at is None:
                    loss_at = time.monotonic()
                self._drop()
                self.retries += 1
                time.sleep(self.backoff_s(attempt))
        raise ClientGaveUp(
            f"request to {self.host}:{self.port} failed after "
            f"{self.retry.max_attempts} attempts"
        )

    def wait_ready(self, timeout_s: float = 30.0) -> bool:
        """Poll ``{"op": "ready"}`` until the server reports ready."""
        deadline = time.monotonic() + timeout_s
        attempt = 0
        while time.monotonic() < deadline:
            try:
                reply = self.request({"op": "ready"})
            except ClientGaveUp:
                return False
            if reply.get("ready"):
                return True
            time.sleep(self.backoff_s(attempt))
            attempt += 1
        return False

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def tcp_closed_loop(
    host: str,
    port: int,
    concurrency: int,
    requests: int,
    deadline_s: Optional[float] = None,
    slo_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: float = 30.0,
) -> Dict[str, Any]:
    """Closed-loop load against a *remote* JSON-lines server.

    The out-of-process twin of :func:`closed_loop`: each client owns a
    :class:`LineClient`, so a server restart mid-run costs retries and
    a visible ``restart_gap_seconds`` instead of killing the run with
    ``ConnectionRefusedError``.  The report gains a ``resilience``
    section aggregating per-client retry counters.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if requests < 1:
        raise ValueError("requests must be >= 1")
    base_retry = retry or RetryPolicy()
    recorder = _Recorder(slo_s)
    counter_lock = threading.Lock()
    issued = 0
    gave_up = 0
    clients: List[LineClient] = []
    for i in range(concurrency):
        clients.append(
            LineClient(
                host,
                port,
                retry=dataclasses.replace(
                    base_retry, seed=base_retry.seed + i
                ),
                timeout_s=timeout_s,
            )
        )

    def next_index() -> Optional[int]:
        nonlocal issued
        with counter_lock:
            if issued >= requests:
                return None
            index = issued
            issued += 1
            return index

    def run_client(client: LineClient) -> None:
        nonlocal gave_up
        payload: Dict[str, Any] = {}
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        while True:
            index = next_index()
            if index is None:
                return
            t0 = time.monotonic()
            try:
                reply = client.request(payload)
            except ClientGaveUp:
                with counter_lock:
                    gave_up += 1
                recorder.record_error()
                return
            outcome = str(reply.get("outcome", "error"))
            if outcome == "error":
                recorder.record_error()
                continue
            recorder.record(
                outcome,
                reply.get("rung"),
                bool(reply.get("valid")),
                time.monotonic() - t0,
            )

    threads = [
        threading.Thread(
            target=run_client, args=(client,), name=f"tcp-loadgen-{i}"
        )
        for i, client in enumerate(clients)
    ]
    t_start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for client in clients:
        client.close()
    report = recorder.report("tcp_closed", time.monotonic() - t_start, issued)
    report["concurrency"] = concurrency
    report["resilience"] = {
        "retries": sum(c.retries for c in clients),
        "reconnects": sum(c.reconnects for c in clients),
        "clients_gave_up": gave_up,
        "restart_gap_seconds": round(
            max((c.restart_gap_seconds for c in clients), default=0.0), 4
        ),
        "retry_policy": {
            "base_s": base_retry.base_s,
            "cap_s": base_retry.cap_s,
            "max_attempts": base_retry.max_attempts,
            "seed": base_retry.seed,
        },
    }
    return report


def sweep_closed_loop(
    server_factory: Callable[[], PlanningServer],
    levels: Sequence[int],
    requests: int,
    **kwargs: Any,
) -> Dict[str, Any]:
    """Run :func:`closed_loop` at each concurrency level.

    ``server_factory`` builds (and the sweep closes) a fresh server per
    level so EWMA state and queue depth never leak across levels.
    Returns ``{"levels": {str(level): report, ...}}``.
    """
    reports: Dict[str, Any] = {}
    for level in levels:
        server = server_factory()
        try:
            reports[str(level)] = closed_loop(
                server, concurrency=level, requests=requests, **kwargs
            )
        finally:
            server.close()
    return {"levels": reports}
