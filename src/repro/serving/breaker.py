"""A small circuit breaker guarding each rung of the degradation ladder.

Classic three-state breaker (closed → open → half-open):

* **closed** — the rung runs normally; ``failure_threshold`` consecutive
  failures/timeouts trip the breaker.
* **open** — the rung is skipped outright for ``cooldown_s`` (monotonic)
  seconds, so a persistently broken policy artifact or a pathological
  catalog stops burning every request's deadline on a doomed rung.
* **half-open** — after the cool-down exactly one trial request is let
  through (``allows`` hands out a single-trial token under the lock;
  concurrent callers are refused until the trial resolves); success
  closes the breaker (and resets the failure count), failure re-opens
  it for another cool-down.

All state transitions and the failure counter are guarded by a lock:
the serving front-end calls ``allows``/``record_*`` from many worker
threads at once, and an unsynchronized ``_failures += 1`` loses counts
while an unsynchronized half-open would admit a thundering herd of
"trial" requests at a rung that just proved itself broken.

The clock is injectable so chaos tests drive recovery deterministically
instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..obs import get_registry, labelled

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a monotonic cool-down.

    Parameters
    ----------
    name:
        Label for metrics (the rung name).
    failure_threshold:
        Consecutive failures that trip the breaker (``k`` in the docs).
    cooldown_s:
        Seconds the breaker stays open before allowing a trial.
    clock:
        Injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.RLock()
        self._state = STATE_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False

    def _refresh_locked(self) -> None:
        """Open → half-open once the cool-down has elapsed (lock held)."""
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(STATE_HALF_OPEN)
            self._trial_in_flight = False

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed cool-down."""
        with self._lock:
            self._refresh_locked()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success."""
        with self._lock:
            return self._failures

    def allows(self) -> bool:
        """Whether a request may use the guarded rung right now.

        Open blocks.  Half-open admits exactly one trial request: the
        first caller takes the single-trial token and probes the rung (a
        failure will re-open, a success will close); every concurrent
        caller is refused until the trial resolves.
        """
        with self._lock:
            self._refresh_locked()
            if self._state == STATE_OPEN:
                return False
            if self._state == STATE_HALF_OPEN:
                if self._trial_in_flight:
                    return False
                self._trial_in_flight = True
            return True

    def record_success(self) -> None:
        """The rung produced a usable result: close and reset."""
        with self._lock:
            self._failures = 0
            self._trial_in_flight = False
            if self._state != STATE_CLOSED:
                self._transition(STATE_CLOSED)

    def record_failure(self) -> None:
        """The rung raised or timed out: count, and trip at threshold.

        A half-open trial failure re-opens immediately regardless of the
        threshold — the trial existed precisely to test recovery.
        """
        with self._lock:
            self._failures += 1
            self._trial_in_flight = False
            if (
                self._state == STATE_HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                if self._state != STATE_OPEN:
                    self._transition(STATE_OPEN)

    def _transition(self, state: str) -> None:
        self._state = state
        get_registry().inc(
            labelled(
                "serve_breaker_transitions_total",
                rung=self.name,
                state=state,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"failures={self._failures}/{self.failure_threshold})"
        )
