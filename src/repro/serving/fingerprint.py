"""Content fingerprints for the policy registry's artifact keys.

A trained policy is reusable exactly when three inputs match: the
catalog the Q-table indexes, the task's constraint specification, and
the planner configuration that trained it.  This module derives a
stable identity for each — and a combined :func:`policy_key` — so the
registry can answer "do I already have this policy?" with a string
comparison, the same trick the run manifest plays with
:func:`repro.runner.manifest.fingerprint_payload`.

Stability contract (tested in ``tests/test_fingerprint.py``):

* **Content, not labels.**  Display names (catalog name, task name,
  item names) are excluded — two catalogs with identical items but
  different labels train identical policies and share one artifact.
* **Order-independent.**  Item order, topic-set iteration order,
  category-credit dict insertion order, template-permutation order, and
  metadata key order are all canonicalized (sorted) before hashing.
* **Dtype-independent.**  NumPy scalars are converted to their Python
  equivalents, so ``np.float64(3.0)`` and ``3.0`` credits hash alike.
* **Process-independent.**  The hash is SHA-256 over canonical JSON —
  no ``repr``, no ``hash()`` randomization — so keys survive restarts
  and cross machines.

Anything that changes planning behaviour *must* land in the key: a
different ``gap``, budget, coverage threshold, or reward weight yields
a different fingerprint, which is what keeps a registry from serving a
policy trained under different constraints.
"""

from __future__ import annotations

import numbers
from typing import Any, Dict, List, Mapping

import numpy as np

from ..core.catalog import Catalog
from ..core.config import PlannerConfig
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.items import Item, ItemType
from ..runner.manifest import fingerprint_payload

#: Bump when a payload's shape changes incompatibly — old artifacts
#: then simply miss (and retrain) instead of loading wrongly.
#: v2: config payload gained ``candidate_top_k``.
FINGERPRINT_SCHEMA = 2


def canonical_value(value: Any) -> Any:
    """JSON-safe, order- and dtype-normalized form of ``value``.

    Used for free-form surfaces (item metadata) where the repo does not
    control the types.  Mappings and sets are sorted; NumPy scalars
    collapse to Python scalars; tuples become lists.  Unrepresentable
    objects raise ``TypeError`` — better to refuse a key than to mint
    an unstable one from ``repr``.
    """
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, Mapping):
        return [
            [str(k), canonical_value(v)]
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        ]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical_value(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting"
    )


def _item_payload(item: Item) -> Dict[str, Any]:
    # Metadata rides as [key, value] pairs, not a dict: the manifest
    # hasher strips a fixed set of timing-ish *dict* keys, and a user
    # metadata key must never collide with that list.
    return {
        "id": item.item_id,
        "type": item.item_type.value,
        "credits": float(item.credits),
        "prereqs": sorted(
            sorted(group) for group in item.prerequisites.groups
        ),
        "topics": sorted(item.topics),
        "category": item.category,
        "metadata": [
            [str(k), canonical_value(v)]
            for k, v in sorted(item.metadata, key=lambda kv: str(kv[0]))
        ],
    }


def catalog_payload(catalog: Catalog) -> Dict[str, Any]:
    """Canonical content of a catalog (names excluded, items sorted)."""
    return {
        "schema": FINGERPRINT_SCHEMA,
        "items": [
            _item_payload(item)
            for item in sorted(catalog.items, key=lambda i: i.item_id)
        ],
    }


def constraint_payload(task: TaskSpec) -> Dict[str, Any]:
    """Canonical content of a task's hard + soft constraints."""
    hard, soft = task.hard, task.soft
    return {
        "schema": FINGERPRINT_SCHEMA,
        "hard": {
            "min_credits": float(hard.min_credits),
            "num_primary": int(hard.num_primary),
            "num_secondary": int(hard.num_secondary),
            "gap": int(hard.gap),
            "category_credits": [
                [name, float(minimum)]
                for name, minimum in sorted(hard.category_credits)
            ],
            "max_distance": (
                None
                if hard.max_distance is None
                else float(hard.max_distance)
            ),
            "theme_adjacency_gap": bool(hard.theme_adjacency_gap),
        },
        "soft": {
            "ideal_topics": sorted(soft.ideal_topics),
            "template": sorted(
                "".join(
                    "P" if t is ItemType.PRIMARY else "S" for t in perm
                )
                for perm in soft.template.permutations
            ),
        },
    }


def config_payload(config: PlannerConfig) -> Dict[str, Any]:
    """Canonical content of a planner configuration.

    Every *behaviour-affecting* field lands in the payload: any
    hyper-parameter change — even the seed, which steers tie-breaking
    and hence the learned table — must produce a distinct policy key.
    ``candidate_top_k`` is included because epsilon-greedy exploration
    samples its random actions from the pruned candidate set, so the
    knob changes learning trajectories.  ``qtable_backend`` is
    deliberately *excluded*: it is a pure storage-representation choice
    (dense and sparse tables are bit-identical), so a policy trained
    under either backend may serve requests keyed under the other.
    """
    weights = config.weights
    return {
        "schema": FINGERPRINT_SCHEMA,
        "episodes": int(config.episodes),
        "learning_rate": float(config.learning_rate),
        "discount": float(config.discount),
        "coverage_threshold": float(config.coverage_threshold),
        "weights": {
            "delta": float(weights.delta),
            "beta": float(weights.beta),
            "w_primary": float(weights.w_primary),
            "w_secondary": float(weights.w_secondary),
            "category_weights": [
                [name, float(weight)]
                for name, weight in sorted(weights.category_weights)
            ],
        },
        "similarity": config.similarity.value,
        "exploration": float(config.exploration),
        "mask_invalid_actions": bool(config.mask_invalid_actions),
        "recommendation": config.recommendation.value,
        "lookahead_weight": (
            None
            if config.lookahead_weight is None
            else float(config.lookahead_weight)
        ),
        "portfolio": bool(config.portfolio),
        "seed": None if config.seed is None else int(config.seed),
        "candidate_top_k": (
            None
            if config.candidate_top_k is None
            else int(config.candidate_top_k)
        ),
    }


def catalog_fingerprint(catalog: Catalog) -> str:
    """SHA-256 identity of a catalog's plannable content."""
    return fingerprint_payload(catalog_payload(catalog))


def constraint_fingerprint(task: TaskSpec) -> str:
    """SHA-256 identity of a task's constraint signature."""
    return fingerprint_payload(constraint_payload(task))


def config_fingerprint(config: PlannerConfig) -> str:
    """SHA-256 identity of a planner configuration."""
    return fingerprint_payload(config_payload(config))


def policy_key(
    catalog: Catalog,
    task: TaskSpec,
    config: PlannerConfig,
    mode: DomainMode = DomainMode.COURSE,
) -> str:
    """The registry key: one hash over the three component fingerprints.

    ``mode`` participates because course and trip episode semantics
    train different tables over identical-looking inputs.
    """
    return fingerprint_payload(
        {
            "schema": FINGERPRINT_SCHEMA,
            "catalog": catalog_fingerprint(catalog),
            "constraints": constraint_fingerprint(task),
            "config": config_fingerprint(config),
            "mode": mode.value,
        }
    )


def short_key(key: str, length: int = 12) -> str:
    """Display prefix of a policy key (CLI tables, log lines)."""
    return key[:length]
