"""Feasibility-only constructive repair: the ladder's bottom rung.

When the learned policy is unavailable (untrained, corrupt, tripped
breaker) and the greedy EDA fallback produced an invalid plan, the
service still owes the caller *something valid*.  This planner performs
a depth-first search over the template's slots that checks nothing but
the hard constraints — no reward, no topic preference, no popularity —
which makes it the cheapest search that is still complete:

* slot type comes from the template permutation (so the length and
  primary/secondary split hold by construction),
* prerequisite/gap satisfaction is checked at placement,
* course mode prunes branches that can no longer reach ``#cr`` or the
  per-category minima,
* trip mode prunes on the time budget, the travel-distance threshold,
  and the no-consecutive-shared-theme rule.

Candidates are ordered to fail fast: courses try high-credit items first
(reaching ``#cr`` as early as possible), trips try short visits first
(keeping the budget open).  The search is bounded by ``max_expansions``
and an optional ``should_stop`` callback; the facade calls the repair
rung *without* a deadline because returning nothing is strictly worse
than running a few milliseconds over.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.base import BaselinePlanner
from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import InfeasibleError, PlanningError
from ..core.items import Item, ItemType
from ..core.plan import Plan
from ..core.validation import PlanValidator, _item_distance_km


class RepairPlanner(BaselinePlanner):
    """Constructive hard-constraint-only planner (see module docstring).

    Parameters
    ----------
    max_expansions:
        DFS node budget per template permutation.
    """

    name = "repair"

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        mode: DomainMode = DomainMode.COURSE,
        max_expansions: int = 200_000,
    ) -> None:
        super().__init__(catalog, task, mode)
        self.max_expansions = max_expansions
        self._validator = PlanValidator(
            task.hard, credits_are_budget=(mode is DomainMode.TRIP)
        )

    def recommend(
        self,
        start_item_id: Optional[str] = None,
        horizon: Optional[int] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        pinned: Optional[Sequence[Item]] = None,
    ) -> Plan:
        """A hard-constraint-valid plan, preferring the pinned start.

        Tries every template permutation with the start pinned, then —
        unlike the gold oracles — retries unpinned, because a valid plan
        from a different opening item still beats no plan at all.

        ``pinned`` locks an already-executed plan prefix into slots
        ``0..len(pinned)-1`` verbatim: repair can never rewrite history.
        The prefix is given as :class:`Item` objects (not ids) because
        committed items may no longer exist in the live catalog after an
        availability delta.  Only permutations whose leading slot types
        match the prefix are searched, and the DFS fills suffix slots
        only.  ``pinned`` and ``start_item_id`` are mutually exclusive.

        Raises
        ------
        PlanningError
            When no permutation admits a valid completion within the
            expansion budget (or ``should_stop`` fired first).
        """
        if pinned:
            if start_item_id is not None:
                raise PlanningError(
                    "pinned prefix and start_item_id are mutually "
                    "exclusive; the prefix already fixes slot 0"
                )
            return self._recommend_pinned(tuple(pinned), should_stop)
        if start_item_id is not None and start_item_id not in self.catalog:
            raise InfeasibleError(
                f"start item {start_item_id!r} not in catalog "
                f"{self.catalog.name!r}"
            )
        for start in (start_item_id, None):
            for permutation in self.task.soft.template:
                plan = self._search(permutation, start, should_stop)
                if plan is not None:
                    return plan
            if start_item_id is None:
                break
        raise PlanningError(
            f"repair search found no valid plan for task "
            f"{self.task.name!r} in catalog {self.catalog.name!r}"
        )

    def _recommend_pinned(
        self,
        prefix: Tuple[Item, ...],
        should_stop: Optional[Callable[[], bool]],
    ) -> Plan:
        """Complete a committed prefix; the prefix slots are immutable."""
        ids = [item.item_id for item in prefix]
        if len(set(ids)) != len(ids):
            raise PlanningError(
                f"pinned prefix repeats item(s): {sorted(set(ids))}"
            )
        matched = False
        for permutation in self.task.soft.template:
            if len(prefix) > len(permutation):
                continue
            if any(
                permutation[i] is not prefix[i].item_type
                for i in range(len(prefix))
            ):
                continue
            matched = True
            plan = self._search(
                permutation, None, should_stop, prefix=prefix
            )
            if plan is not None:
                return plan
        if not matched:
            raise PlanningError(
                f"no template permutation of task {self.task.name!r} "
                f"matches the pinned prefix types"
            )
        raise PlanningError(
            f"repair search found no valid completion of the "
            f"{len(prefix)}-item pinned prefix for task "
            f"{self.task.name!r} in catalog {self.catalog.name!r}"
        )

    # ------------------------------------------------------------------
    # DFS over template slots
    # ------------------------------------------------------------------

    def _search(
        self,
        permutation: Sequence[ItemType],
        start_item_id: Optional[str],
        should_stop: Optional[Callable[[], bool]],
        prefix: Tuple[Item, ...] = (),
    ) -> Optional[Plan]:
        self._expansions = 0
        self._stop = should_stop
        chosen: List[Item] = list(prefix)
        positions: Dict[str, int] = {
            item.item_id: i for i, item in enumerate(prefix)
        }
        distance_used = 0.0
        if (
            self.mode is DomainMode.TRIP
            and self.task.hard.max_distance is not None
        ):
            for previous, item in zip(prefix, prefix[1:]):
                d = _item_distance_km(previous, item)
                distance_used += d if d is not None else 0.0
        if self._dfs(
            permutation, len(prefix), chosen, positions,
            distance_used, start_item_id,
        ):
            plan = Plan(items=tuple(chosen), catalog_name=self.catalog.name)
            if self._validator.is_valid(plan):
                return plan
        return None

    def _dfs(
        self,
        permutation: Sequence[ItemType],
        slot: int,
        chosen: List[Item],
        positions: Dict[str, int],
        distance_used: float,
        start_item_id: Optional[str],
    ) -> bool:
        if slot == len(permutation):
            return self._totals_ok(chosen)
        if self._expansions >= self.max_expansions:
            return False
        if (
            self._stop is not None
            and self._expansions % 256 == 0
            and self._stop()
        ):
            return False
        for item, leg in self._candidates(
            permutation[slot], slot, chosen, positions, start_item_id
        ):
            self._expansions += 1
            chosen.append(item)
            positions[item.item_id] = slot
            slots_left = len(permutation) - slot - 1
            if self._feasible(chosen, slots_left, distance_used + leg) and (
                self._dfs(
                    permutation, slot + 1, chosen, positions,
                    distance_used + leg, start_item_id,
                )
            ):
                return True
            chosen.pop()
            del positions[item.item_id]
        return False

    def _candidates(
        self,
        required_type: ItemType,
        slot: int,
        chosen: List[Item],
        positions: Dict[str, int],
        start_item_id: Optional[str],
    ) -> List[Tuple[Item, float]]:
        """Eligible items for a slot, with the new travel leg (trips)."""
        hard = self.task.hard
        trip = self.mode is DomainMode.TRIP
        used = sum(i.credits for i in chosen)
        last = chosen[-1] if chosen else None
        if slot == 0 and start_item_id is not None:
            pool: Sequence[Item] = (self.catalog[start_item_id],)
        else:
            pool = self.catalog.items

        out: List[Tuple[float, str, Item, float]] = []
        for item in pool:
            if item.item_id in positions:
                continue
            if item.item_type is not required_type:
                continue
            if trip and item.credits > hard.min_credits - used + 1e-9:
                continue
            if not item.prerequisites.satisfied_by(
                positions, slot, hard.gap
            ):
                continue
            if (
                trip
                and hard.theme_adjacency_gap
                and last is not None
                and (item.topics & last.topics)
            ):
                continue
            leg = 0.0
            if trip and hard.max_distance is not None and last is not None:
                d = _item_distance_km(last, item)
                leg = d if d is not None else 0.0
            # Courses reach #cr fastest with big items first; trips keep
            # the budget open with short visits first.
            rank = -item.credits if not trip else item.credits
            out.append((rank, item.item_id, item, leg))
        out.sort(key=lambda entry: (entry[0], entry[1]))
        return [(item, leg) for _, _, item, leg in out]

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def _feasible(
        self, chosen: Sequence[Item], slots_left: int, distance_used: float
    ) -> bool:
        hard = self.task.hard
        if self.mode is DomainMode.TRIP:
            if (
                hard.max_distance is not None
                and distance_used > hard.max_distance + 1e-9
            ):
                return False
            return True
        # Courses: can the remaining slots still reach #cr?
        used_ids = {i.item_id for i in chosen}
        open_credits = sorted(
            (
                i.credits
                for i in self.catalog
                if i.item_id not in used_ids
            ),
            reverse=True,
        )
        attainable = (
            sum(i.credits for i in chosen) + sum(open_credits[:slots_left])
        )
        if attainable < hard.min_credits - 1e-9:
            return False
        return self._categories_feasible(chosen, slots_left, used_ids)

    def _categories_feasible(
        self, chosen: Sequence[Item], slots_left: int, used_ids: set
    ) -> bool:
        """Prune branches that can no longer meet the category minima."""
        minima = self.task.hard.category_credit_map
        if not minima:
            return True
        earned: Dict[str, float] = {}
        for item in chosen:
            if item.category is not None:
                earned[item.category] = (
                    earned.get(item.category, 0.0) + item.credits
                )
        deficit_slots = 0
        for category, need in sorted(minima.items()):
            shortfall = need - earned.get(category, 0.0)
            if shortfall <= 1e-9:
                continue
            available = [
                i
                for i in self.catalog.in_category(category)
                if i.item_id not in used_ids
            ]
            if not available:
                return False
            per_item = max(i.credits for i in available)
            needed = int(-(-shortfall // per_item))  # ceil
            if needed > len(available):
                return False
            deficit_slots += needed
        return deficit_slots <= slots_left

    def _totals_ok(self, chosen: Sequence[Item]) -> bool:
        """Leaf check: credit floor (courses) and category minima."""
        hard = self.task.hard
        if self.mode is DomainMode.TRIP:
            return True
        total = sum(i.credits for i in chosen)
        if total < hard.min_credits - 1e-9:
            return False
        minima = hard.category_credit_map
        if not minima:
            return True
        earned: Dict[str, float] = {}
        for item in chosen:
            if item.category is not None:
                earned[item.category] = (
                    earned.get(item.category, 0.0) + item.credits
                )
        return all(
            earned.get(cat, 0.0) >= need - 1e-9
            for cat, need in minima.items()
        )
