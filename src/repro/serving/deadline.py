"""Monotonic deadlines for anytime planning.

A :class:`Deadline` wraps ``time.monotonic`` (wall-clock changes must
never extend or shrink a request budget) and is passed down the serving
stack as a plain ``should_stop`` callable, so the core planners stay
free of any serving dependency.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class Deadline:
    """A monotonic time budget for one request.

    Parameters
    ----------
    seconds:
        Budget from *now*; ``None`` means unbounded (``expired`` is
        always False and ``remaining()`` is infinite).
    clock:
        Injectable monotonic clock for tests (defaults to
        ``time.monotonic``).
    """

    __slots__ = ("seconds", "_clock", "_start")

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        return self.seconds is not None and self.elapsed() >= self.seconds

    def elapsed(self) -> float:
        """Seconds spent since construction."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (never negative; infinite when unbounded)."""
        if self.seconds is None:
            return float("inf")
        return max(0.0, self.seconds - self.elapsed())

    def should_stop(self) -> bool:
        """The bound-method form planners accept as a stop callback."""
        return self.expired

    def __repr__(self) -> str:  # pragma: no cover - display helper
        if self.seconds is None:
            return "Deadline(unbounded)"
        return (
            f"Deadline({self.seconds:g}s, remaining={self.remaining():.3f}s)"
        )
