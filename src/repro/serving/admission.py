"""Admission control: catalog/constraint auditing before planning.

A planning service that accepts millions of heterogeneous requests
cannot assume the paper's clean catalogs.  The auditor is the gate run
at load time (:func:`repro.datasets.loaders.load`) and at request time
(:meth:`repro.serving.facade.PlanningService.serve`): it checks the raw
item set and the task's hard constraints for the defects that would
otherwise surface mid-search as crashes, hangs, or doomed rollouts.

Checks, in order:

1. **duplicate_id** — two items share an id (the second is quarantined).
2. **bad_credits** — NaN, infinite, or non-positive ``cr_m`` (the Item
   constructor rejects ``<= 0`` but NaN slips through every comparison).
3. **bad_topic** — empty or non-string topic names (they would poison
   the topic vocabulary and every coverage vector built from it).
4. **dangling_prereq** — a prerequisite referencing an id not in the
   item set.  In quarantine mode the *reference* is unsatisfiable, so
   the dependent item is dropped (its own dependents re-audit in the
   next pass).
5. **prereq_cycle** — prerequisite cycles, AND/OR aware: an OR-group is
   satisfiable when *any* member is; an item is unsatisfiable only when
   some group has *no* satisfiable member.  A cycle that every plan can
   route around (``a`` requires ``b OR c`` while ``b`` requires ``a``)
   is therefore **not** flagged; a cycle with no escape is, and the
   report names one witness cycle.
6. **infeasible_credits / infeasible_primary / infeasible_length** —
   fast structural screens against the hard constraints: the surviving
   pool cannot reach ``#cr`` (courses), cannot fill ``#primary``, or is
   smaller than the plan length.  These are *task* defects — quarantine
   cannot repair them, so they always reject.

Two dispositions:

* **strict** — any finding rejects the catalog
  (:meth:`AdmissionReport.raise_if_rejected` raises
  :class:`AdmissionError`, or :class:`~repro.core.exceptions.InfeasibleError`
  when the only findings are infeasibility screens).
* **quarantine** — defective items are dropped, the survivors are
  re-audited (dropping ``a`` may orphan ``b``), and planning continues
  on the clean subset; the report keeps every finding and the
  quarantined ids so the envelope can disclose what was removed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import DataModelError, InfeasibleError
from ..core.items import Item
from ..obs import get_registry, labelled

#: Finding codes that indicate an unsatisfiable *task* (as opposed to a
#: repairable *catalog*): quarantine mode still rejects on these.
INFEASIBILITY_CODES = (
    "infeasible_credits",
    "infeasible_primary",
    "infeasible_length",
)


class AdmissionError(DataModelError):
    """A catalog or request was rejected by admission control.

    Non-retriable (via :class:`~repro.core.exceptions.DataModelError`):
    the same request can never pass until the catalog itself changes.
    Carries the full :class:`AdmissionReport` for the caller.
    """

    def __init__(self, report: "AdmissionReport") -> None:
        super().__init__(report.describe())
        self.report = report


@dataclass(frozen=True)
class AdmissionFinding:
    """One defect discovered by the auditor.

    Attributes
    ----------
    code:
        Machine-readable defect class (see the module docstring).
    message:
        Human-readable explanation, naming the offending items (and the
        witness cycle for ``prereq_cycle`` findings).
    item_ids:
        The items implicated — the ones quarantine mode would drop.
        Empty for task-level findings (infeasibility screens).
    """

    code: str
    message: str
    item_ids: Tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.code}] {self.message}"


@dataclass(frozen=True)
class AdmissionReport:
    """Outcome of one audit pass (possibly after quarantine rounds).

    Attributes
    ----------
    findings:
        Every defect found, across all quarantine rounds.
    quarantined:
        Item ids dropped in quarantine mode (empty in strict mode).
    mode:
        ``"strict"`` or ``"quarantine"``.
    admitted:
        Number of items that survived.
    """

    findings: Tuple[AdmissionFinding, ...] = ()
    quarantined: Tuple[str, ...] = ()
    mode: str = "strict"
    admitted: int = 0

    @property
    def ok(self) -> bool:
        """True when the catalog passed with no findings at all."""
        return not self.findings

    @property
    def rejected(self) -> bool:
        """True when planning must not proceed.

        Strict mode rejects on any finding; quarantine mode only on
        task-level infeasibility (or when quarantine emptied the pool).
        """
        if not self.findings:
            return False
        if self.mode == "strict":
            return True
        return self.admitted == 0 or any(
            f.code in INFEASIBILITY_CODES for f in self.findings
        )

    def codes(self) -> Tuple[str, ...]:
        """Finding codes in discovery order, for compact assertions."""
        return tuple(f.code for f in self.findings)

    def describe(self) -> str:
        """Multi-line summary for logs and CLI output."""
        if self.ok:
            return f"admitted {self.admitted} items, no findings"
        lines = [
            f"admission ({self.mode}): {len(self.findings)} finding(s), "
            f"{len(self.quarantined)} quarantined, {self.admitted} admitted"
        ]
        lines.extend(str(f) for f in self.findings)
        return "\n".join(lines)

    def raise_if_rejected(self) -> None:
        """Raise the typed rejection when :attr:`rejected` is True.

        :class:`InfeasibleError` when every finding is an infeasibility
        screen (the catalog is clean, the *task* is impossible);
        :class:`AdmissionError` otherwise.
        """
        if not self.rejected:
            return
        obs = get_registry()
        for finding in self.findings:
            obs.inc(labelled("admission_rejects_total", code=finding.code))
        if all(f.code in INFEASIBILITY_CODES for f in self.findings):
            raise InfeasibleError(self.describe())
        raise AdmissionError(self)


@dataclass
class _AuditPass:
    """Mutable working state of one audit round over an item sequence."""

    findings: List[AdmissionFinding] = field(default_factory=list)
    dropped: Set[str] = field(default_factory=set)

    def flag(self, code: str, message: str, *item_ids: str) -> None:
        self.findings.append(AdmissionFinding(code, message, tuple(item_ids)))
        self.dropped.update(item_ids)


def _check_items(items: Sequence[Item], audit: _AuditPass) -> None:
    """Per-item sanity: duplicate ids, credit values, topic names."""
    seen: Set[str] = set()
    for item in items:
        if item.item_id in seen:
            audit.flag(
                "duplicate_id",
                f"item id {item.item_id!r} appears more than once",
                item.item_id,
            )
            continue
        seen.add(item.item_id)
        credits = item.credits
        if (
            not isinstance(credits, (int, float))
            or math.isnan(credits)
            or math.isinf(credits)
            or credits <= 0
        ):
            audit.flag(
                "bad_credits",
                f"item {item.item_id!r} has unusable credits {credits!r}",
                item.item_id,
            )
        for topic in item.topics:
            if not isinstance(topic, str) or not topic.strip():
                audit.flag(
                    "bad_topic",
                    f"item {item.item_id!r} has a blank or non-string "
                    f"topic {topic!r}",
                    item.item_id,
                )
                break


def _check_references(items: Sequence[Item], audit: _AuditPass) -> None:
    """Dangling prerequisite references (AND/OR aware).

    An OR-group needs only one resolvable member, so a group is only a
    defect when *every* member is unknown; a fully-unknown group makes
    the dependent item unsatisfiable.
    """
    known = {item.item_id for item in items} - audit.dropped
    for item in items:
        if item.item_id in audit.dropped:
            continue
        for group in item.prerequisites.groups:
            unknown = group - known
            if unknown == group:
                audit.flag(
                    "dangling_prereq",
                    f"item {item.item_id!r} requires one of "
                    f"{sorted(group)} but none exist in the catalog",
                    item.item_id,
                )
                break


def _find_cycles(items: Sequence[Item], audit: _AuditPass) -> None:
    """AND/OR-aware prerequisite-cycle detection.

    Fixpoint over *satisfiability*: an item is satisfiable iff every
    prerequisite group contains at least one satisfiable member.  Items
    outside the fixpoint are locked behind an inescapable cycle (or
    depend on such an item); a DFS restricted to the unsatisfiable set
    then names one witness cycle for the report.
    """
    alive = [i for i in items if i.item_id not in audit.dropped]
    by_id: Dict[str, Item] = {i.item_id: i for i in alive}
    satisfiable: Set[str] = {
        i.item_id for i in alive if i.prerequisites.is_empty
    }
    # Items whose every group already has a satisfiable member join the
    # set; repeat until nothing changes.  O(rounds * edges), and rounds
    # is bounded by the longest prerequisite chain.
    changed = True
    while changed:
        changed = False
        for item in alive:
            if item.item_id in satisfiable:
                continue
            if all(
                any(m in satisfiable for m in group)
                for group in item.prerequisites.groups
            ):
                satisfiable.add(item.item_id)
                changed = True
    stuck = [i for i in alive if i.item_id not in satisfiable]
    if not stuck:
        return
    cycle = _witness_cycle({i.item_id for i in stuck}, by_id)
    names = " -> ".join(cycle) if cycle else ", ".join(
        sorted(i.item_id for i in stuck)
    )
    audit.flag(
        "prereq_cycle",
        f"{len(stuck)} item(s) are locked behind a prerequisite cycle "
        f"({names})",
        *sorted(i.item_id for i in stuck),
    )


def _witness_cycle(
    stuck: Set[str], by_id: Dict[str, Item]
) -> Optional[List[str]]:
    """Name one concrete cycle inside the unsatisfiable set.

    DFS following only edges into other stuck items — every stuck item
    has at least one fully-stuck group, so such an edge always exists
    and the walk must eventually revisit a node.
    """
    for root in sorted(stuck):
        path: List[str] = []
        index: Dict[str, int] = {}
        node = root
        while node is not None and node not in index:
            index[node] = len(path)
            path.append(node)
            node = _next_stuck(node, stuck, by_id)
        if node is not None:
            return path[index[node]:] + [node]
    return None


def _next_stuck(
    node: str, stuck: Set[str], by_id: Dict[str, Item]
) -> Optional[str]:
    """A stuck member of one of ``node``'s fully-stuck groups."""
    for group in by_id[node].prerequisites.groups:
        # A group blocks the node only when no member is satisfiable:
        # every member is itself stuck or absent from the pool entirely.
        if all(m in stuck or m not in by_id for m in group):
            members = sorted(group & stuck)
            if members:
                return members[0]
    return None


def _check_feasibility(
    items: Sequence[Item],
    task: TaskSpec,
    mode: DomainMode,
    audit: _AuditPass,
) -> None:
    """Structural infeasibility screens over the surviving pool."""
    alive = [i for i in items if i.item_id not in audit.dropped]
    hard = task.hard
    if len(alive) < hard.plan_length:
        audit.flag(
            "infeasible_length",
            f"plan needs {hard.plan_length} items but only {len(alive)} "
            f"are admissible",
        )
    primaries = sum(1 for i in alive if i.is_primary)
    if primaries < hard.num_primary:
        audit.flag(
            "infeasible_primary",
            f"hard constraints require {hard.num_primary} primary items "
            f"but the admissible pool has {primaries}",
        )
    if mode is not DomainMode.TRIP:
        # Courses: the best attainable total is the plan_length largest
        # credit values; if even that misses #cr, every plan fails.
        credits = sorted(
            (i.credits for i in alive if not math.isnan(i.credits)),
            reverse=True,
        )
        attainable = sum(credits[: hard.plan_length])
        if attainable < hard.min_credits - 1e-9:
            audit.flag(
                "infeasible_credits",
                f"the {hard.plan_length} largest admissible items total "
                f"{attainable:g} credits, below the required "
                f"{hard.min_credits:g}",
            )


def audit_items(
    items: Sequence[Item],
    task: Optional[TaskSpec] = None,
    mode: DomainMode = DomainMode.COURSE,
    quarantine: bool = False,
) -> Tuple[AdmissionReport, Tuple[Item, ...]]:
    """Audit a raw item sequence; return (report, surviving items).

    In strict mode (``quarantine=False``) the survivors equal the input
    whenever the report is clean and are meaningless otherwise (the
    report rejects).  In quarantine mode defective items are dropped and
    the remainder re-audited until stable — dropping a prerequisite can
    orphan its dependents, so one pass is not enough.
    """
    obs = get_registry()
    with obs.span("admission.audit"):
        pool = list(items)
        all_findings: List[AdmissionFinding] = []
        quarantined: List[str] = []
        for _ in range(len(pool) + 1):
            audit = _AuditPass()
            _check_items(pool, audit)
            _check_references(pool, audit)
            _find_cycles(pool, audit)
            if task is not None:
                _check_feasibility(pool, task, mode, audit)
            all_findings.extend(audit.findings)
            if not quarantine or not audit.dropped:
                break
            quarantined.extend(sorted(audit.dropped))
            pool = [i for i in pool if i.item_id not in audit.dropped]
            # Duplicate-id survivors: the first occurrence stays, later
            # ones were flagged and dropped above.
        report = AdmissionReport(
            findings=tuple(all_findings),
            quarantined=tuple(quarantined),
            mode="quarantine" if quarantine else "strict",
            admitted=len(pool),
        )
    if not report.ok:
        for finding in report.findings:
            obs.inc(
                labelled("admission_findings_total", code=finding.code)
            )
    return report, tuple(pool)


def audit_catalog(
    catalog: Catalog,
    task: Optional[TaskSpec] = None,
    mode: DomainMode = DomainMode.COURSE,
    quarantine: bool = False,
) -> Tuple[AdmissionReport, Catalog]:
    """Audit a built catalog; return (report, admitted catalog).

    Quarantine mode returns a rebuilt catalog containing only the
    survivors (prerequisites referencing dropped items are tolerated the
    same way :meth:`Catalog.subset` tolerates them — they can simply
    never be satisfied, and the cycle/dangling passes already dropped
    items that *require* them).  Strict mode returns the input catalog
    unchanged.
    """
    report, survivors = audit_items(
        catalog.items, task=task, mode=mode, quarantine=quarantine
    )
    if not quarantine or not report.quarantined or not survivors:
        return report, catalog
    admitted = Catalog(
        survivors,
        name=catalog.name,
        validate_prerequisites=False,
    )
    return report, admitted


def screen_request(
    catalog: Catalog,
    task: TaskSpec,
    mode: DomainMode,
    start_item_id: Optional[str] = None,
) -> AdmissionReport:
    """Fast request-time screens (no cycle DFS — that ran at load time).

    Checks the structural feasibility of the task against the catalog
    and that the requested start item exists.  Cheap enough to run on
    every request.
    """
    audit = _AuditPass()
    if start_item_id is not None and start_item_id not in catalog:
        audit.flag(
            "unknown_start",
            f"start item {start_item_id!r} is not in catalog "
            f"{catalog.name!r}",
        )
    _check_feasibility(catalog.items, task, mode, audit)
    return AdmissionReport(
        findings=tuple(audit.findings),
        mode="strict",
        admitted=len(catalog),
    )
