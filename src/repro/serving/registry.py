"""Versioned policy artifact store with a warm in-process LRU cache.

The train-once/serve-many layer: a :class:`PolicyRegistry` keys trained
Q-tables by ``(catalog fingerprint, constraint signature, config hash)``
(see :mod:`repro.serving.fingerprint`), persists them with the
checksummed format-v2 writer (:func:`repro.core.serialization.save_policy`),
and fronts the on-disk store with an LRU cache of deserialized tables so
the serving hot path never touches the filesystem — let alone a SARSA
fit — after the first request for a given planning universe.

Layout (one directory per key under the registry root)::

    <root>/<key>/meta.json          current version pointer + provenance
    <root>/<key>/policy.v<N>.json   immutable policy artifacts (v2 format)

Lifecycle
---------
* **Lookup** walks cache → disk → (optional) train.  A disk artifact
  that fails its checksum or does not parse is *quarantined* — renamed
  to ``*.quarantined`` and counted — instead of poisoning the cache or
  killing the request; the caller falls through to a retrain.
* **Publish** writes the new ``policy.v<N+1>.json`` first, fsynced, then
  atomically replaces ``meta.json``.  Readers either see the old
  complete version or the new complete version, never a torn one.
* **Staleness / background refit** — entries older than ``max_age_s``
  keep serving (stale reads are explicitly allowed) while a single
  daemon thread retrains per key and swaps the cache entry on success.
  A hit during an in-flight refit returns the old version.

Every transition is observable: ``registry_cache_{hits,misses,
evictions}_total``, ``registry_refits_total``, ``registry_artifacts_
quarantined_total`` counters, a ``registry_policy_age_seconds`` gauge,
and ``registry.{lookup,load,train,refit}`` spans.
"""

from __future__ import annotations

import json
import logging
import pathlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.catalog import Catalog
from ..core.config import PlannerConfig
from ..core.constraints import TaskSpec
from ..core.env import DomainMode
from ..core.exceptions import ArtifactError, PlanningError
from ..core.plan import Plan
from ..core.qtable import QTableBase
from ..core.scoring import PlanScore
from ..core.serialization import load_policy, save_policy
from ..obs import get_registry as get_metrics
from ..runner.manifest import atomic_write_text
from .fingerprint import (
    catalog_fingerprint,
    config_fingerprint,
    constraint_fingerprint,
    policy_key,
    short_key,
)

logger = logging.getLogger(__name__)

PathLike = Union[str, pathlib.Path]

META_NAME = "meta.json"
META_SCHEMA = 1
QUARANTINE_SUFFIX = ".quarantined"

#: How a lookup was satisfied (the label on ``registry_lookups_total``).
SOURCE_CACHE = "cache"
SOURCE_DISK = "disk"
SOURCE_TRAINED = "trained"

#: Default capacity of the warm cache (deserialized Q-tables).
DEFAULT_CACHE_SIZE = 8

#: Per-entry cap on memoized plans (see :attr:`CacheEntry.plans`).
DEFAULT_PLAN_CACHE_SIZE = 64


def _policy_name(version: int) -> str:
    return f"policy.v{version}.json"


@dataclass(frozen=True)
class ArtifactMeta:
    """Provenance of one stored policy version."""

    key: str
    version: int
    catalog_fingerprint: str
    constraint_fingerprint: str
    config_fingerprint: str
    mode: str
    trained_at: float
    episodes: Optional[int] = None
    update_count: int = 0
    label: str = ""
    schema: int = META_SCHEMA

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "key": self.key,
            "version": self.version,
            "catalog_fingerprint": self.catalog_fingerprint,
            "constraint_fingerprint": self.constraint_fingerprint,
            "config_fingerprint": self.config_fingerprint,
            "mode": self.mode,
            "trained_at": self.trained_at,
            "episodes": self.episodes,
            "update_count": self.update_count,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArtifactMeta":
        try:
            return cls(
                key=str(data["key"]),
                version=int(data["version"]),  # type: ignore[arg-type]
                catalog_fingerprint=str(data["catalog_fingerprint"]),
                constraint_fingerprint=str(data["constraint_fingerprint"]),
                config_fingerprint=str(data["config_fingerprint"]),
                mode=str(data.get("mode", "course")),
                trained_at=float(data["trained_at"]),  # type: ignore[arg-type]
                episodes=(
                    None
                    if data.get("episodes") is None
                    else int(data["episodes"])  # type: ignore[arg-type]
                ),
                update_count=int(data.get("update_count", 0)),  # type: ignore[arg-type]
                label=str(data.get("label", "")),
                schema=int(data.get("schema", META_SCHEMA)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed registry meta: {exc}") from exc


class CacheEntry:
    """One warm policy: the deserialized table plus its provenance.

    ``plans`` memoizes greedy-traversal results per ``(start, horizon)``:
    recommendation (and scoring) is a pure function of (table, start,
    horizon, seed), so identical warm requests can skip the traversal
    entirely.  The memo dies with the entry — an eviction or a refit
    swap starts a fresh one, which is exactly the invalidation the
    plan cache needs.  Lookups and stores take the entry's lock: the
    serving front-end probes one entry from many worker threads, and
    an unguarded ``move_to_end``/``popitem`` pair corrupts the
    ``OrderedDict`` (or raises ``KeyError``) under that interleaving.
    """

    __slots__ = ("qtable", "meta", "plans", "plan_cache_size", "_lock")

    def __init__(
        self,
        qtable: QTableBase,
        meta: ArtifactMeta,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> None:
        self.qtable = qtable
        self.meta = meta
        self.plans: "OrderedDict[Tuple[Optional[str], Optional[int]], Tuple[Plan, PlanScore]]" = (
            OrderedDict()
        )
        self.plan_cache_size = plan_cache_size
        self._lock = threading.Lock()

    def cached_plan(
        self, start: Optional[str], horizon: Optional[int]
    ) -> Optional[Tuple[Plan, PlanScore]]:
        with self._lock:
            hit = self.plans.get((start, horizon))
            if hit is not None:
                self.plans.move_to_end((start, horizon))
            return hit

    def store_plan(
        self,
        start: Optional[str],
        horizon: Optional[int],
        plan: Plan,
        score: PlanScore,
    ) -> None:
        with self._lock:
            self.plans[(start, horizon)] = (plan, score)
            self.plans.move_to_end((start, horizon))
            while len(self.plans) > self.plan_cache_size:
                self.plans.popitem(last=False)


class PolicyRegistry:
    """Versioned policy store + warm LRU cache + background refit.

    Parameters
    ----------
    root:
        Directory holding the artifact store (created on first publish).
    cache_size:
        Warm-cache capacity in deserialized Q-tables (LRU eviction).
    max_age_s:
        Staleness horizon: a cache hit whose artifact is older schedules
        a background refit (the hit itself still serves the old
        version).  ``None`` disables staleness tracking.
    plan_cache_size:
        Per-entry cap on memoized greedy-traversal plans.
    clock:
        Injectable wall clock (``time.time``).  Artifact ages are
        persisted timestamps, so the wall clock — not the monotonic
        clock — is the right base; tests inject a fake.
    """

    def __init__(
        self,
        root: PathLike,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_age_s: Optional[float] = None,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if cache_size < 1:
            raise PlanningError("registry cache_size must be >= 1")
        self.root = pathlib.Path(root)
        self.cache_size = cache_size
        self.max_age_s = max_age_s
        self.plan_cache_size = plan_cache_size
        self.clock = clock
        self._cache: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._refits: Dict[str, threading.Thread] = {}

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------

    def key_for(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode = DomainMode.COURSE,
    ) -> str:
        """The artifact key for one planning universe."""
        return policy_key(catalog, task, config, mode)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def acquire(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode = DomainMode.COURSE,
        trainer: Optional[Callable[[], QTableBase]] = None,
        episodes: Optional[int] = None,
        label: str = "",
        refit: bool = True,
        key: Optional[str] = None,
    ) -> Tuple[CacheEntry, str]:
        """Resolve a policy: cache → disk → train (miss-through).

        Returns ``(entry, source)`` with ``source`` one of
        :data:`SOURCE_CACHE` / :data:`SOURCE_DISK` / :data:`SOURCE_TRAINED`.
        ``trainer`` produces a fitted :class:`QTableBase` on a full miss; when
        omitted, a fresh :class:`~repro.core.planner.RLPlanner` is fitted
        (``episodes`` overriding ``config.episodes``).  With ``refit``
        (default) a stale cache hit also schedules a background retrain.
        ``key`` lets a caller that already derived the policy key (the
        serving facade does it once per universe) skip re-hashing the
        catalog on every request — the warm path is then a lock and a
        dict probe, nothing more.
        """
        obs = get_metrics()
        if key is None:
            key = self.key_for(catalog, task, config, mode)
        with obs.span("registry.lookup"):
            with self._lock:
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
            if entry is not None:
                obs.inc("registry_cache_hits_total")
                age = max(0.0, self.clock() - entry.meta.trained_at)
                obs.set_gauge("registry_policy_age_seconds", age)
                if refit and self.max_age_s is not None and age > self.max_age_s:
                    self._schedule_refit(
                        key, catalog, task, config, mode, trainer, episodes,
                        label,
                    )
                return entry, SOURCE_CACHE
            obs.inc("registry_cache_misses_total")

        entry = self._load_entry(key, catalog)
        if entry is not None:
            self._insert(key, entry)
            age = max(0.0, self.clock() - entry.meta.trained_at)
            obs.set_gauge("registry_policy_age_seconds", age)
            if refit and self.max_age_s is not None and age > self.max_age_s:
                self._schedule_refit(
                    key, catalog, task, config, mode, trainer, episodes, label
                )
            return entry, SOURCE_DISK

        with obs.span("registry.train"):
            qtable = self._train(catalog, task, config, mode, trainer, episodes)
        meta = self.publish(
            catalog, task, config, mode, qtable,
            episodes=episodes if episodes is not None else config.episodes,
            label=label,
        )
        entry = CacheEntry(qtable, meta, self.plan_cache_size)
        self._insert(key, entry)
        obs.set_gauge("registry_policy_age_seconds", 0.0)
        return entry, SOURCE_TRAINED

    def get(self, key: str, catalog: Catalog) -> Optional[CacheEntry]:
        """Cache-then-disk lookup by raw key; ``None`` on a full miss."""
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
        if entry is not None:
            get_metrics().inc("registry_cache_hits_total")
            return entry
        get_metrics().inc("registry_cache_misses_total")
        entry = self._load_entry(key, catalog)
        if entry is not None:
            self._insert(key, entry)
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Warm-cache-only probe: no disk read, no train, no LRU touch.

        The serving facade polls this per request while a post-churn
        refit for a *new* key is in flight — the probe must never block
        or train, because the stale policy is still answering traffic.
        """
        with self._lock:
            return self._cache.get(key)

    def invalidate(
        self,
        key: str,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode = DomainMode.COURSE,
        trainer: Optional[Callable[[], QTableBase]] = None,
        episodes: Optional[int] = None,
        label: str = "",
    ) -> bool:
        """An availability delta changed a universe's fingerprint.

        ``key`` is the *new* universe's policy key (derived from the
        post-delta catalog).  If neither the warm cache nor the disk
        store already holds it, schedule the usual single-flight
        background refit to train it; the caller keeps serving its
        stale key until :meth:`peek` returns the landed entry.  Returns
        True when a refit thread was newly started.
        """
        with self._lock:
            if key in self._cache:
                return False
            already = self._refits.get(key)
            if already is not None and already.is_alive():
                return False
        # A previous run may have the artifact on disk: loading it is
        # much cheaper than retraining.
        entry = self._load_entry(key, catalog)
        if entry is not None:
            self._insert(key, entry)
            return False
        get_metrics().inc("registry_invalidations_total")
        self._schedule_refit(
            key, catalog, task, config, mode, trainer, episodes, label
        )
        return self.refit_in_flight(key)

    # ------------------------------------------------------------------
    # Publish / evict / prewarm
    # ------------------------------------------------------------------

    def publish(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode,
        qtable: QTableBase,
        episodes: Optional[int] = None,
        label: str = "",
    ) -> ArtifactMeta:
        """Persist a trained table as the next version of its key.

        The policy file is written (checksummed, fsynced, atomic) before
        ``meta.json`` flips the current-version pointer, so a crash
        between the two leaves the previous version live.  Superseded
        version files are pruned down to the latest two.
        """
        key = self.key_for(catalog, task, config, mode)
        entry_dir = self.root / key
        entry_dir.mkdir(parents=True, exist_ok=True)
        current = self._read_meta(entry_dir)
        version = 1 if current is None else current.version + 1
        meta = ArtifactMeta(
            key=key,
            version=version,
            catalog_fingerprint=catalog_fingerprint(catalog),
            constraint_fingerprint=constraint_fingerprint(task),
            config_fingerprint=config_fingerprint(config),
            mode=mode.value,
            trained_at=self.clock(),
            episodes=episodes,
            update_count=qtable.update_count,
            label=label,
        )
        save_policy(qtable, entry_dir / _policy_name(version))
        atomic_write_text(
            entry_dir / META_NAME,
            json.dumps(meta.to_dict(), indent=2, sort_keys=True),
        )
        self._prune_versions(entry_dir, keep_from=version - 1)
        return meta

    def evict(self, key: str, delete: bool = False) -> bool:
        """Drop a key from the warm cache (and optionally from disk).

        Returns True when anything was removed.
        """
        removed = False
        with self._lock:
            if self._cache.pop(key, None) is not None:
                removed = True
                get_metrics().inc("registry_cache_evictions_total")
        if delete:
            entry_dir = self.root / key
            if entry_dir.is_dir():
                for path in sorted(entry_dir.iterdir()):
                    path.unlink()
                entry_dir.rmdir()
                removed = True
        return removed

    def prewarm(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode = DomainMode.COURSE,
        episodes: Optional[int] = None,
        label: str = "",
    ) -> Tuple[ArtifactMeta, str]:
        """Train-or-load a key ahead of traffic; returns (meta, source)."""
        entry, source = self.acquire(
            catalog, task, config, mode,
            episodes=episodes, label=label, refit=False,
        )
        return entry.meta, source

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def entries(self) -> List[Dict[str, object]]:
        """One row per stored key: provenance, age, cache state, size."""
        rows: List[Dict[str, object]] = []
        if not self.root.is_dir():
            return rows
        with self._lock:
            warm = set(self._cache)
        for entry_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
            meta = self._read_meta(entry_dir)
            if meta is None:
                continue
            policy_path = entry_dir / _policy_name(meta.version)
            rows.append(
                {
                    "key": meta.key,
                    "short_key": short_key(meta.key),
                    "version": meta.version,
                    "mode": meta.mode,
                    "label": meta.label,
                    "episodes": meta.episodes,
                    "update_count": meta.update_count,
                    "age_s": max(0.0, self.clock() - meta.trained_at),
                    "bytes": (
                        policy_path.stat().st_size
                        if policy_path.exists()
                        else 0
                    ),
                    "warm": meta.key in warm,
                }
            )
        return rows

    @property
    def cached_keys(self) -> Tuple[str, ...]:
        """Warm-cache keys in LRU order (oldest first)."""
        with self._lock:
            return tuple(self._cache)

    def refit_in_flight(self, key: str) -> bool:
        """True while a background refit for ``key`` is running."""
        with self._lock:
            thread = self._refits.get(key)
        return thread is not None and thread.is_alive()

    @property
    def refits_in_flight(self) -> int:
        """Count of live background refit threads (health probes)."""
        with self._lock:
            threads = list(self._refits.values())
        return sum(1 for thread in threads if thread.is_alive())

    def drain(self, timeout: Optional[float] = None) -> None:
        """Join all in-flight refit threads (tests, orderly shutdown)."""
        with self._lock:
            threads = list(self._refits.values())
        for thread in threads:
            thread.join(timeout)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _insert(self, key: str, entry: CacheEntry) -> None:
        with self._lock:
            self._cache[key] = entry
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                evicted, _ = self._cache.popitem(last=False)
                get_metrics().inc("registry_cache_evictions_total")
                logger.debug("registry: evicted %s", short_key(evicted))

    def _read_meta(self, entry_dir: pathlib.Path) -> Optional[ArtifactMeta]:
        path = entry_dir / META_NAME
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            if not isinstance(data, dict):
                raise ArtifactError(f"{path}: not a JSON object")
            return ArtifactMeta.from_dict(data)
        except (OSError, ValueError, ArtifactError) as exc:
            logger.warning("registry: unreadable meta %s: %s", path, exc)
            return None

    def _load_entry(
        self, key: str, catalog: Catalog
    ) -> Optional[CacheEntry]:
        """Deserialize the current version from disk; quarantine rot."""
        obs = get_metrics()
        entry_dir = self.root / key
        meta = self._read_meta(entry_dir)
        if meta is None:
            return None
        policy_path = entry_dir / _policy_name(meta.version)
        with obs.span("registry.load"):
            try:
                qtable = load_policy(policy_path, catalog)
            except (ArtifactError, PlanningError, OSError) as exc:
                self._quarantine(policy_path, exc)
                return None
        return CacheEntry(qtable, meta, self.plan_cache_size)

    def _quarantine(self, policy_path: pathlib.Path, exc: Exception) -> None:
        """Sideline a corrupt artifact so it cannot poison later lookups."""
        obs = get_metrics()
        obs.inc("registry_artifacts_quarantined_total")
        logger.warning(
            "registry: quarantining corrupt artifact %s: %s",
            policy_path, exc,
        )
        try:
            if policy_path.exists():
                policy_path.replace(
                    policy_path.with_name(
                        policy_path.name + QUARANTINE_SUFFIX
                    )
                )
            meta_path = policy_path.parent / META_NAME
            if meta_path.exists():
                meta_path.replace(
                    meta_path.with_name(meta_path.name + QUARANTINE_SUFFIX)
                )
        except OSError as move_exc:  # pragma: no cover - fs race
            logger.warning(
                "registry: could not quarantine %s: %s",
                policy_path, move_exc,
            )

    @staticmethod
    def _train(
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode,
        trainer: Optional[Callable[[], QTableBase]],
        episodes: Optional[int],
    ) -> QTableBase:
        if trainer is not None:
            return trainer()
        # Local import: planner pulls in the learner stack, which the
        # registry only needs on the training path.
        from ..core.planner import RLPlanner

        planner = RLPlanner(catalog, task, config, mode=mode)
        starts = [
            item.item_id
            for item in catalog.primaries()
            if item.prerequisites.is_empty
        ] or [catalog.items[0].item_id]
        planner.fit(start_item_ids=starts[:1], episodes=episodes)
        return planner.qtable

    def _schedule_refit(
        self,
        key: str,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode,
        trainer: Optional[Callable[[], QTableBase]],
        episodes: Optional[int],
        label: str,
    ) -> None:
        """Kick off (at most one) background retrain for a stale key.

        The worker trains on a *fresh* planner — never the serving one,
        whose environment state is not thread-safe — publishes the new
        version, and swaps the cache entry under the lock.  Readers in
        flight keep their reference to the old entry; the next lookup
        sees the new one.  Failures are counted and logged, and the old
        version keeps serving.
        """
        with self._lock:
            existing = self._refits.get(key)
            if existing is not None and existing.is_alive():
                return
            thread = threading.Thread(
                target=self._refit_worker,
                args=(key, catalog, task, config, mode, trainer, episodes,
                      label),
                name=f"registry-refit-{short_key(key)}",
                daemon=True,
            )
            self._refits[key] = thread
        get_metrics().inc("registry_refits_scheduled_total")
        thread.start()

    def _refit_worker(
        self,
        key: str,
        catalog: Catalog,
        task: TaskSpec,
        config: PlannerConfig,
        mode: DomainMode,
        trainer: Optional[Callable[[], QTableBase]],
        episodes: Optional[int],
        label: str,
    ) -> None:
        obs = get_metrics()
        try:
            with obs.span("registry.refit"):
                qtable = self._train(
                    catalog, task, config, mode, trainer, episodes
                )
                meta = self.publish(
                    catalog, task, config, mode, qtable,
                    episodes=(
                        episodes if episodes is not None else config.episodes
                    ),
                    label=label,
                )
            entry = CacheEntry(qtable, meta, self.plan_cache_size)
            with self._lock:
                # Swap only if the key is still cached or cacheable; an
                # explicit evict during the refit should not resurrect it.
                self._cache[key] = entry
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    evicted, _ = self._cache.popitem(last=False)
                    obs.inc("registry_cache_evictions_total")
                    logger.debug(
                        "registry: evicted %s", short_key(evicted)
                    )
            obs.inc("registry_refits_total")
        except Exception as exc:  # noqa: BLE001 - background isolation:
            # a refit failure must never take serving down; the stale
            # version keeps answering.
            obs.inc("registry_refit_failures_total")
            logger.warning(
                "registry: background refit of %s failed: %s",
                short_key(key), exc,
            )

    @staticmethod
    def _prune_versions(entry_dir: pathlib.Path, keep_from: int) -> None:
        """Delete version files older than ``keep_from`` (rollback margin)."""
        for path in entry_dir.glob("policy.v*.json"):
            stem = path.name[len("policy.v"):-len(".json")]
            try:
                version = int(stem)
            except ValueError:
                continue
            if version < keep_from:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - fs race
                    pass

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"PolicyRegistry(root={str(self.root)!r}, "
            f"cache={len(self._cache)}/{self.cache_size}, "
            f"max_age_s={self.max_age_s})"
        )
