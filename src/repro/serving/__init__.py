"""Resilient serving layer: admission control, deadlines, degradation.

Public surface of the serving subsystem.  The facade
(:class:`PlanningService`) is the intended entry point; the building
blocks (admission audit, :class:`Deadline`, :class:`CircuitBreaker`,
:class:`RepairPlanner`) are exported for tests and power users.

Import discipline: this package may import from ``repro.core``,
``repro.baselines`` and ``repro.obs`` only — never from
``repro.datasets`` (which imports the auditor from here).
"""

from .admission import (
    AdmissionError,
    AdmissionFinding,
    AdmissionReport,
    INFEASIBILITY_CODES,
    audit_catalog,
    audit_items,
    screen_request,
)
from .breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from .deadline import Deadline
from .facade import (
    PlanningService,
    RUNG_EDA,
    RUNG_REPAIR,
    RUNG_SARSA,
    RUNGS,
    RungAttempt,
    ServeRequest,
    ServeResult,
)
from .repair import RepairPlanner

__all__ = [
    "AdmissionError",
    "AdmissionFinding",
    "AdmissionReport",
    "CircuitBreaker",
    "Deadline",
    "INFEASIBILITY_CODES",
    "PlanningService",
    "RUNG_EDA",
    "RUNG_REPAIR",
    "RUNG_SARSA",
    "RUNGS",
    "RepairPlanner",
    "RungAttempt",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "ServeRequest",
    "ServeResult",
    "audit_catalog",
    "audit_items",
    "screen_request",
]
