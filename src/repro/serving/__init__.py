"""Resilient serving layer: admission control, deadlines, degradation.

Public surface of the serving subsystem.  The facade
(:class:`PlanningService`) is the intended entry point; the building
blocks (admission audit, :class:`Deadline`, :class:`CircuitBreaker`,
:class:`RepairPlanner`) are exported for tests and power users.

Import discipline: this package may import from ``repro.core``,
``repro.baselines``, ``repro.obs`` and ``repro.runner.manifest`` (the
fingerprint/atomic-write helpers, which are dataset-free) only — never
from ``repro.datasets`` (which imports the auditor from here).
"""

from ..core.deltas import (
    CatalogDelta,
    CatalogView,
    ConstraintDelta,
    delta_from_payload,
)
from .admission import (
    AdmissionError,
    AdmissionFinding,
    AdmissionReport,
    INFEASIBILITY_CODES,
    audit_catalog,
    audit_items,
    screen_request,
)
from .breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from .deadline import Deadline
from .facade import (
    DeltaReport,
    JournalRecovery,
    PlanningService,
    RUNG_EDA,
    RUNG_REPAIR,
    RUNG_SARSA,
    RUNGS,
    RungAttempt,
    ServeRequest,
    ServeResult,
)
from .journal import (
    DeltaJournal,
    JOURNAL_NAME,
    JOURNAL_SCHEMA,
    ReplayResult,
    SNAPSHOT_NAME,
    SnapshotState,
)
from .loadgen import (
    ClientGaveUp,
    LineClient,
    RetryPolicy,
    closed_loop,
    open_loop,
    sweep_closed_loop,
    tcp_closed_loop,
)
from .replan import (
    CLASS_BENIGN,
    CLASS_PREFIX_INVALIDATING,
    CLASS_SUFFIX_ONLY,
    REPLAN_DEGRADED,
    REPLAN_DRAINING,
    REPLAN_FAILED,
    REPLAN_INVALIDATED,
    REPLAN_NOOP,
    REPLAN_OK,
    REPLAN_SHED,
    AppliedDelta,
    ReplanResult,
    ReplanSession,
)
from .server import (
    OUTCOME_SHED,
    SHED_NOT_READY,
    PlanningServer,
    ServerClosed,
    request_from_payload,
    result_to_payload,
)
from .fingerprint import (
    catalog_fingerprint,
    config_fingerprint,
    constraint_fingerprint,
    policy_key,
    short_key,
)
from .registry import (
    ArtifactMeta,
    CacheEntry,
    PolicyRegistry,
    SOURCE_CACHE,
    SOURCE_DISK,
    SOURCE_TRAINED,
)
from .repair import RepairPlanner

__all__ = [
    "AdmissionError",
    "AdmissionFinding",
    "AdmissionReport",
    "AppliedDelta",
    "ArtifactMeta",
    "CLASS_BENIGN",
    "CLASS_PREFIX_INVALIDATING",
    "CLASS_SUFFIX_ONLY",
    "CacheEntry",
    "CatalogDelta",
    "CatalogView",
    "CircuitBreaker",
    "ClientGaveUp",
    "ConstraintDelta",
    "Deadline",
    "DeltaJournal",
    "DeltaReport",
    "INFEASIBILITY_CODES",
    "JOURNAL_NAME",
    "JOURNAL_SCHEMA",
    "JournalRecovery",
    "LineClient",
    "OUTCOME_SHED",
    "PlanningServer",
    "PlanningService",
    "PolicyRegistry",
    "REPLAN_DEGRADED",
    "REPLAN_DRAINING",
    "REPLAN_FAILED",
    "REPLAN_INVALIDATED",
    "REPLAN_NOOP",
    "REPLAN_OK",
    "REPLAN_SHED",
    "RUNG_EDA",
    "RUNG_REPAIR",
    "RUNG_SARSA",
    "RUNGS",
    "RepairPlanner",
    "ReplanResult",
    "ReplayResult",
    "ReplanSession",
    "RetryPolicy",
    "RungAttempt",
    "SHED_NOT_READY",
    "SNAPSHOT_NAME",
    "SnapshotState",
    "SOURCE_CACHE",
    "SOURCE_DISK",
    "SOURCE_TRAINED",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "ServeRequest",
    "ServeResult",
    "ServerClosed",
    "audit_catalog",
    "audit_items",
    "catalog_fingerprint",
    "closed_loop",
    "config_fingerprint",
    "constraint_fingerprint",
    "delta_from_payload",
    "open_loop",
    "policy_key",
    "request_from_payload",
    "result_to_payload",
    "screen_request",
    "short_key",
    "sweep_closed_loop",
    "tcp_closed_loop",
]
