"""Concurrent service front-end: a threaded traffic path for serving.

:class:`PlanningServer` multiplexes concurrent requests onto one
:class:`~repro.serving.facade.PlanningService` through a stdlib
``ThreadPoolExecutor``, adding the four things a single-threaded facade
cannot provide:

1. **Bounded admission queue + shedding.**  The executor's internal
   queue is unbounded, so the server tracks queued/in-flight counts
   itself and *sheds* (typed ``shed`` envelope, never an exception)
   when the backlog reaches ``max_queue``, when the estimated queue
   wait already exceeds the request's deadline (an EWMA of recent
   service times prices the wait), or when the server is draining.
   Provably-doomed requests are rejected on the caller's thread by the
   existing :func:`~repro.serving.admission.screen_request` fast
   screens before they ever occupy a queue slot.
2. **Arrival-anchored deadlines.**  The request's
   :class:`~repro.serving.deadline.Deadline` starts ticking at
   *admission*, so time spent queued counts against the budget; a
   request whose budget died in the queue is shed at dequeue instead of
   burning a worker on an already-lost cause.
3. **Graceful drain.**  :meth:`drain` stops admitting (new submits get
   ``shed``/``draining`` envelopes), lets every admitted request
   finish, and joins the pool — the shutdown path load tests exercise
   mid-flight.
4. **A wire protocol.**  :meth:`listen` exposes the same ``submit``
   path over a JSON-lines TCP socket (one request object per line, one
   envelope per line back), the minimal front-end a load balancer or
   the load generator can talk to across processes.

Everything beneath ``submit`` is the ordinary facade ladder — breakers,
degradation, registry — which is exactly the point: this is the layer
that puts real contention on the resilience machinery.

Thread-safety contract (see DESIGN.md §10): the server shares one
``PlanningService`` across workers; the facade keeps per-request state
on a per-request context and per-thread fallback rungs, the breakers
and metrics registry take locks, and this module's own counters are
guarded by ``_lock``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.deltas import CatalogDelta, Delta, delta_from_payload
from ..core.exceptions import DataModelError, DeltaError, PlanningError
from ..core.plan import Plan
from ..obs import get_registry, labelled
from .admission import screen_request
from .deadline import Deadline
from .facade import (
    OUTCOME_REJECTED,
    DeltaReport,
    PlanningService,
    ServeRequest,
    ServeResult,
)
from .replan import (
    REPLAN_DRAINING,
    REPLAN_SHED,
    ReplanResult,
    ReplanSession,
)

#: Envelope outcome for a request the server refused to run at all.
OUTCOME_SHED = "shed"

#: Shed reasons (the ``reason`` label on ``server_shed_total``).
SHED_QUEUE_FULL = "queue_full"
SHED_DEADLINE_UNREACHABLE = "deadline_unreachable"
SHED_QUEUE_EXPIRED = "queue_expired"
SHED_DRAINING = "draining"
SHED_NOT_READY = "not_ready"

#: Wire-layer hardening defaults: a request line has no business being
#: anywhere near 64 KiB, and an idle connection is held open forever
#: unless the server opts into a timeout.
WIRE_MAX_LINE_BYTES = 64 * 1024

#: Server latency histogram buckets (seconds): sub-ms to 30 s.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0,
)

#: EWMA smoothing for the service-time estimate behind deadline sheds.
EWMA_ALPHA = 0.2


class ServerClosed(RuntimeError):
    """The server was closed (not draining — fully shut down)."""


class PlanningServer:
    """Threaded front-end multiplexing requests onto a PlanningService.

    Parameters
    ----------
    service:
        The (fitted / registry-attached) facade answering requests.
    workers:
        Thread-pool size.
    max_queue:
        Bound on *queued* (admitted, not yet running) requests; the
        queue-full shed threshold.
    default_deadline_s:
        Budget applied to requests that do not carry their own.
    drain_session_grace_s:
        Per-session replan budget :meth:`drain` grants open
        :class:`~repro.serving.replan.ReplanSession`s with unresolved
        deltas before shedding them with a ``draining`` envelope.
    clock:
        Injectable monotonic clock (tests drive shedding without
        sleeping).
    ready:
        Start in the ready state.  A recovering front-end passes
        ``False`` and calls :meth:`mark_ready` once journal replay has
        completed, so plan requests shed (``not_ready``) instead of
        serving pre-replay state; ``{"op": "ready"}`` probes report it.
    wire_max_line_bytes:
        Hard bound on one JSON-lines request line; an oversized line
        gets a typed ``error`` envelope and the connection is dropped
        (a client streaming garbage cannot balloon server memory).
    wire_idle_timeout_s:
        Per-connection idle timeout for the socket listener; ``None``
        keeps connections forever (the pre-hardening behaviour).
    """

    def __init__(
        self,
        service: PlanningService,
        workers: int = 4,
        max_queue: int = 32,
        default_deadline_s: Optional[float] = None,
        drain_session_grace_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        ready: bool = True,
        wire_max_line_bytes: int = WIRE_MAX_LINE_BYTES,
        wire_idle_timeout_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if wire_max_line_bytes < 2:
            raise ValueError("wire_max_line_bytes must be >= 2")
        if wire_idle_timeout_s is not None and wire_idle_timeout_s <= 0:
            raise ValueError("wire_idle_timeout_s must be positive")
        self.service = service
        self.workers = workers
        self.max_queue = max_queue
        self.default_deadline_s = default_deadline_s
        self.drain_session_grace_s = drain_session_grace_s
        self.clock = clock
        self.wire_max_line_bytes = wire_max_line_bytes
        self.wire_idle_timeout_s = wire_idle_timeout_s
        self._ready = ready
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="plansrv"
        )
        self._lock = threading.Lock()
        self._queued = 0
        self._inflight = 0
        self._ewma_service_s: Optional[float] = None
        self._draining = False
        self._closed = False
        self._tcp_server: Optional[_JsonLineTcpServer] = None
        self._tcp_thread: Optional[threading.Thread] = None
        self._sessions: Dict[str, ReplanSession] = {}
        self._session_seq = 0

    # ------------------------------------------------------------------
    # Admission + dispatch
    # ------------------------------------------------------------------

    def submit(
        self,
        request: Optional[ServeRequest] = None,
        *,
        start_item_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
        horizon: Optional[int] = None,
    ) -> "Future[ServeResult]":
        """Admit one request; returns a future resolving to its envelope.

        Sheds (an immediately-completed future carrying a ``shed``
        envelope) instead of blocking or raising when the queue is
        full, the deadline is provably unreachable, or the server is
        draining.  Raises :class:`ServerClosed` only after
        :meth:`close`.
        """
        if request is None:
            request = ServeRequest(
                start_item_id=start_item_id,
                deadline_s=deadline_s,
                horizon=horizon,
            )
        if request.deadline_s is None and self.default_deadline_s is not None:
            request = ServeRequest(
                start_item_id=request.start_item_id,
                deadline_s=self.default_deadline_s,
                horizon=request.horizon,
            )
        obs = get_registry()
        if self._closed:
            raise ServerClosed("server is closed")
        if not self.ready:  # property: reads the flag under _lock
            # Journal replay hasn't completed: serving now could hand
            # out plans over pre-crash state (closed items included).
            return self._shed(request, SHED_NOT_READY)

        # Fast screen on the caller's thread: a provably-doomed request
        # must not occupy a queue slot or a worker.
        screen = screen_request(
            self.service.live_catalog,
            self.service.task,
            self.service.mode,
            request.start_item_id,
        )
        if screen.rejected:
            for finding in screen.findings:
                obs.inc(
                    labelled("admission_rejects_total", code=finding.code)
                )
            obs.inc(
                labelled("server_requests_total", outcome=OUTCOME_REJECTED)
            )
            return _completed(
                ServeResult(
                    outcome=OUTCOME_REJECTED,
                    admission=screen,
                    deadline_s=request.deadline_s,
                    catalog_version=getattr(
                        self.service, "catalog_version", 0
                    ),
                )
            )

        with self._lock:
            if self._draining:
                return self._shed(request, SHED_DRAINING)
            if self._queued >= self.max_queue:
                return self._shed(request, SHED_QUEUE_FULL)
            if request.deadline_s is not None:
                wait = self._estimated_wait_locked()
                if wait >= request.deadline_s:
                    return self._shed(request, SHED_DEADLINE_UNREACHABLE)
            self._queued += 1
            obs.set_gauge("server_queue_depth", self._queued)
        deadline = Deadline(request.deadline_s, clock=self.clock)
        admitted_at = self.clock()
        return self._executor.submit(
            self._work, request, deadline, admitted_at
        )

    def handle(
        self,
        request: Optional[ServeRequest] = None,
        **kwargs: Any,
    ) -> ServeResult:
        """Synchronous :meth:`submit` (closed-loop clients block here)."""
        return self.submit(request, **kwargs).result()

    def _work(
        self, request: ServeRequest, deadline: Deadline, admitted_at: float
    ) -> ServeResult:
        obs = get_registry()
        with self._lock:
            self._queued -= 1
            self._inflight += 1
            obs.set_gauge("server_queue_depth", self._queued)
        try:
            queue_wait = max(0.0, self.clock() - admitted_at)
            obs.histogram(
                "server_queue_wait_seconds", LATENCY_BUCKETS
            ).observe(queue_wait)
            if deadline.expired:
                # The whole budget died in the queue: shed at dequeue
                # rather than burn a worker on a lost cause.
                obs.inc(
                    labelled("server_shed_total", reason=SHED_QUEUE_EXPIRED)
                )
                obs.inc(
                    labelled("server_requests_total", outcome=OUTCOME_SHED)
                )
                return ServeResult(
                    outcome=OUTCOME_SHED,
                    deadline_s=request.deadline_s,
                    deadline_spent=deadline.elapsed(),
                    deadline_exceeded=True,
                )
            t0 = self.clock()
            result = self.service.serve(request, deadline=deadline)
            service_s = max(0.0, self.clock() - t0)
            with self._lock:
                if self._ewma_service_s is None:
                    self._ewma_service_s = service_s
                else:
                    self._ewma_service_s = (
                        EWMA_ALPHA * service_s
                        + (1.0 - EWMA_ALPHA) * self._ewma_service_s
                    )
            obs.inc(
                labelled("server_requests_total", outcome=result.outcome)
            )
            obs.histogram(
                "server_latency_seconds", LATENCY_BUCKETS
            ).observe(queue_wait + service_s)
            return result
        finally:
            with self._lock:
                self._inflight -= 1

    def _estimated_wait_locked(self) -> float:
        """Expected seconds before a new arrival reaches a worker."""
        if self._ewma_service_s is None:
            return 0.0
        backlog = self._queued + max(0, self._inflight - self.workers + 1)
        return self._ewma_service_s * (backlog / self.workers)

    def _shed(
        self, request: ServeRequest, reason: str
    ) -> "Future[ServeResult]":
        obs = get_registry()
        obs.inc(labelled("server_shed_total", reason=reason))
        obs.inc(labelled("server_requests_total", outcome=OUTCOME_SHED))
        return _completed(
            ServeResult(
                outcome=OUTCOME_SHED,
                deadline_s=request.deadline_s,
            )
        )

    # ------------------------------------------------------------------
    # Sessions + world deltas
    # ------------------------------------------------------------------

    def open_session(
        self, plan: Plan, executed: int = 0
    ) -> ReplanSession:
        """Register a mid-execution plan for delta broadcast + replans."""
        if self._closed:
            raise ServerClosed("server is closed")
        with self._lock:
            if self._draining:
                raise PlanningError(
                    "server is draining; no new replan sessions"
                )
            self._session_seq += 1
            session_id = f"s{self._session_seq}"
        session = self.service.open_session(
            plan, executed=executed, session_id=session_id
        )
        with self._lock:
            # Re-check: a drain() that began while the session was being
            # built has already run its quiesce pass, which would never
            # see this session — reject instead of leaking a live
            # session on a drained server.
            draining = self._draining
            if not draining:
                self._sessions[session_id] = session
        if draining:
            session.quiesce(grace_s=0.0)
            raise PlanningError(
                "server is draining; no new replan sessions"
            )
        return session

    def sessions(self) -> Tuple[ReplanSession, ...]:
        """Snapshot of registered sessions (drained ones included)."""
        with self._lock:
            return tuple(self._sessions.values())

    def apply_delta(self, delta: Delta) -> Optional[DeltaReport]:
        """Fold one world delta in and broadcast it to open sessions.

        Catalog deltas go through the service (re-materializing the
        live catalog and invalidating the policy fingerprint) *and* to
        every non-drained session; constraint deltas are session-scoped
        and only broadcast.  Returns the service's
        :class:`~repro.serving.facade.DeltaReport` for catalog deltas,
        ``None`` for constraint deltas.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        obs = get_registry()
        report: Optional[DeltaReport] = None
        if isinstance(delta, CatalogDelta):
            report = self.service.apply_delta(delta)
            if report.duplicate:
                # A journal-deduped retry: the world did not change, so
                # re-broadcasting would double-log the event in every
                # session's decision log.
                return report
        for session in self.sessions():
            if session.drained:
                continue
            try:
                session.ingest(delta)
            except (PlanningError, DeltaError):
                # The session drained between the check and the ingest,
                # or its view cannot absorb this delta.  Record it and
                # keep broadcasting — one failing session must not
                # starve the sessions after it in the list.
                obs.inc(
                    labelled(
                        "server_session_ingest_errors_total",
                        kind=delta.kind,
                    )
                )
        return report

    def submit_replan(
        self,
        session: ReplanSession,
        deadline_s: Optional[float] = None,
    ) -> "Future[ReplanResult]":
        """Admit one replan onto the worker pool (same queue accounting).

        Replans share the serve path's backpressure: a full queue sheds
        with a typed ``shed`` envelope so a replan burst cannot bypass
        ``max_queue``.  While draining, replans are shed with a typed
        ``draining`` envelope instead of being enqueued — the quiesce
        pass in :meth:`drain` is the only replanning after that.
        """
        obs = get_registry()
        if self._closed:
            raise ServerClosed("server is closed")
        with self._lock:
            if self._draining:
                obs.inc(
                    labelled("server_shed_total", reason=SHED_DRAINING)
                )
                return _completed(
                    ReplanResult(
                        outcome=REPLAN_DRAINING,
                        trigger="drain",
                        suffix_start=session.executed,
                        session_id=session.session_id,
                    )
                )
            if self._queued >= self.max_queue:
                obs.inc(
                    labelled("server_shed_total", reason=SHED_QUEUE_FULL)
                )
                return _completed(
                    ReplanResult(
                        outcome=REPLAN_SHED,
                        trigger="queue_full",
                        suffix_start=session.executed,
                        session_id=session.session_id,
                    )
                )
            self._queued += 1
            obs.set_gauge("server_queue_depth", self._queued)
        return self._executor.submit(
            self._replan_work, session, deadline_s
        )

    def _replan_work(
        self, session: ReplanSession, deadline_s: Optional[float]
    ) -> ReplanResult:
        obs = get_registry()
        with self._lock:
            self._queued -= 1
            self._inflight += 1
            obs.set_gauge("server_queue_depth", self._queued)
        try:
            return session.replan(deadline_s=deadline_s)
        finally:
            with self._lock:
                self._inflight -= 1

    def _quiesce_sessions(self) -> None:
        """Finish-or-shed every open session at drain time."""
        obs = get_registry()
        for session in self.sessions():
            if session.drained:
                continue
            result = session.quiesce(
                grace_s=self.drain_session_grace_s
            )
            outcome = (
                "shed" if result.outcome == REPLAN_DRAINING else "finished"
            )
            obs.inc(
                labelled(
                    "server_sessions_quiesced_total", outcome=outcome
                )
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Point-in-time queue/pool state (for logs and tests)."""
        with self._lock:
            return {
                "queued": self._queued,
                "inflight": self._inflight,
                "workers": self.workers,
                "max_queue": self.max_queue,
                "draining": self._draining,
                "ready": self._ready,
                "sessions": len(self._sessions),
                "ewma_service_ms": (
                    None
                    if self._ewma_service_s is None
                    else 1e3 * self._ewma_service_s
                ),
            }

    @property
    def ready(self) -> bool:
        """True once :meth:`mark_ready` ran (or the server started ready)."""
        with self._lock:
            return self._ready

    def mark_ready(self) -> None:
        """Open the floodgates: journal replay (if any) has completed."""
        with self._lock:
            self._ready = True
        get_registry().set_gauge("server_ready", 1)

    def health(self) -> Dict[str, Any]:
        """The ``{"op": "health"}`` probe payload: liveness + durability.

        Superset of :meth:`stats` with catalog/journal provenance — what
        an operator needs to decide whether a restarted replica has
        actually converged (watermark, pending refit, live version).
        """
        service = self.service
        payload = self.stats()
        payload["outcome"] = "health"
        payload["catalog_version"] = service.catalog_version
        payload["journal_attached"] = service.journal is not None
        payload["journal_seq"] = service.journal_seq
        payload["pending_refit"] = service.pending_policy_key
        registry = service.policy_registry
        payload["refits_in_flight"] = (
            registry.refits_in_flight if registry is not None else 0
        )
        return payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting, finish every admitted request, join the pool.

        After the pool quiesces, every open replan session is drained
        too: sessions with unresolved deltas get one final bounded
        replan (``drain_session_grace_s``), the rest are shed with a
        typed ``draining`` envelope — no session is left half-updated.
        """
        with self._lock:
            self._draining = True
        if self._tcp_server is not None:
            self._tcp_server.shutdown()
        self._executor.shutdown(wait=True)
        self._quiesce_sessions()

    def close(self) -> None:
        """Drain, tear down the socket listener, and reject new submits."""
        self.drain()
        if self._tcp_server is not None:
            self._tcp_server.server_close()
            self._tcp_server = None
        if self._tcp_thread is not None:
            self._tcp_thread.join(timeout=5.0)
            self._tcp_thread = None
        self._closed = True

    def __enter__(self) -> "PlanningServer":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # JSON-lines socket front-end
    # ------------------------------------------------------------------

    def listen(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Serve the JSON-lines protocol on a TCP socket.

        Returns the bound ``(host, port)`` (``port=0`` picks a free
        one).  Each connection may pipeline many newline-delimited
        request objects; each gets one envelope line back.  The accept
        loop runs on a daemon thread; :meth:`close` tears it down.
        """
        if self._tcp_server is not None:
            raise RuntimeError("server is already listening")
        self._tcp_server = _JsonLineTcpServer((host, port), self)
        self._tcp_thread = threading.Thread(
            target=self._tcp_server.serve_forever,
            name="plansrv-accept",
            daemon=True,
        )
        self._tcp_thread.start()
        bound = self._tcp_server.server_address
        return str(bound[0]), int(bound[1])


def _completed(result: Any) -> "Future[Any]":
    future: "Future[Any]" = Future()
    future.set_result(result)
    return future


# ----------------------------------------------------------------------
# Wire codecs (JSON-lines protocol)
# ----------------------------------------------------------------------


def request_from_payload(payload: Dict[str, Any]) -> ServeRequest:
    """Decode one request line; raises ``ValueError`` on bad fields."""
    if not isinstance(payload, dict):
        raise ValueError("request must be a JSON object")
    known = {"start", "deadline_s", "horizon"}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown request fields: {sorted(unknown)}")
    start = payload.get("start")
    if start is not None and not isinstance(start, str):
        raise ValueError("start must be a string item id")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        deadline_s = float(deadline_s)
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
    horizon = payload.get("horizon")
    if horizon is not None:
        horizon = int(horizon)
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
    return ServeRequest(
        start_item_id=start, deadline_s=deadline_s, horizon=horizon
    )


def result_to_payload(result: ServeResult) -> Dict[str, Any]:
    """Encode one envelope as a JSON-ready dict (wire + load reports)."""
    return {
        "outcome": result.outcome,
        "catalog_version": result.catalog_version,
        "rung": result.rung,
        "degraded": result.degraded,
        "valid": result.ok,
        "score": None if result.score is None else result.score.value,
        "plan": (
            None if result.plan is None else list(result.plan.item_ids)
        ),
        "policy": result.policy,
        "plan_cache_hit": result.plan_cache_hit,
        "deadline_s": result.deadline_s,
        "deadline_spent": result.deadline_spent,
        "deadline_exceeded": result.deadline_exceeded,
        "attempts": [
            {
                "rung": attempt.rung,
                "outcome": attempt.outcome,
                "seconds": attempt.seconds,
                "error": attempt.error,
            }
            for attempt in result.attempts
        ],
    }


class _JsonLineHandler(socketserver.StreamRequestHandler):
    """One connection: newline-delimited request → envelope exchanges.

    Hardened against the three classic line-protocol abuses: an
    oversized line (bounded ``readline`` — typed error + disconnect
    instead of unbounded buffering), an idle connection (socket
    timeout), and a client that vanished mid-reply (``_reply`` swallows
    the broken pipe instead of tracebacking the handler thread).  Every
    drop is counted under ``server_wire_errors_total`` by kind.
    """

    def handle(self) -> None:
        server: _JsonLineTcpServer = self.server  # type: ignore[assignment]
        planning = server.planning_server
        max_line = planning.wire_max_line_bytes
        idle_timeout = planning.wire_idle_timeout_s
        if idle_timeout is not None:
            self.connection.settimeout(idle_timeout)
        while True:
            try:
                raw = self.rfile.readline(max_line + 1)
            except socket.timeout:
                get_registry().inc(
                    labelled("server_wire_errors_total", kind="idle_timeout")
                )
                return
            except (ConnectionResetError, OSError):
                get_registry().inc(
                    labelled("server_wire_errors_total", kind="reset")
                )
                return
            if not raw:
                return  # EOF: client closed cleanly.
            if len(raw) > max_line:
                get_registry().inc(
                    labelled("server_wire_errors_total", kind="oversized")
                )
                self._reply(
                    {
                        "outcome": "error",
                        "error": (
                            f"line exceeds {max_line} bytes; "
                            f"closing connection"
                        ),
                    }
                )
                return
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                get_registry().inc(
                    labelled("server_wire_errors_total", kind="malformed")
                )
                if not self._reply(
                    {"outcome": "error", "error": str(exc)}
                ):
                    return
                continue
            if isinstance(payload, dict) and "op" in payload:
                if not self._handle_op(payload):
                    return
                continue
            if isinstance(payload, dict) and "delta" in payload:
                if not self._handle_delta(payload):
                    return
                continue
            try:
                request = request_from_payload(payload)
            except ValueError as exc:
                if not self._reply(
                    {"outcome": "error", "error": str(exc)}
                ):
                    return
                continue
            try:
                result = planning.handle(request)
            except ServerClosed:
                self._reply(
                    {"outcome": "error", "error": "server is closed"}
                )
                return
            if not self._reply(result_to_payload(result)):
                return

    def _handle_op(self, payload: Dict[str, Any]) -> bool:
        """One ``{"op": ...}`` control line (health/ready probes)."""
        planning = self.server.planning_server  # type: ignore[attr-defined]
        op = payload.get("op")
        extra = set(payload) - {"op"}
        if extra:
            return self._reply(
                {
                    "outcome": "error",
                    "error": f"unknown op fields: {sorted(extra)}",
                }
            )
        if op == "health":
            return self._reply(planning.health())
        if op == "ready":
            return self._reply(
                {"outcome": "ready", "ready": planning.ready}
            )
        return self._reply(
            {"outcome": "error", "error": f"unknown op {op!r}"}
        )

    def _handle_delta(self, payload: Dict[str, Any]) -> bool:
        """One ``{"delta": {...}}`` line: apply a world delta event."""
        server: _JsonLineTcpServer = self.server  # type: ignore[assignment]
        planning_server = server.planning_server
        extra = set(payload) - {"delta"}
        if extra:
            return self._reply(
                {
                    "outcome": "error",
                    "error": f"unknown delta fields: {sorted(extra)}",
                }
            )
        try:
            delta = delta_from_payload(payload["delta"])
            report = planning_server.apply_delta(delta)
        except (DeltaError, DataModelError, ValueError) as exc:
            return self._reply({"outcome": "error", "error": str(exc)})
        except ServerClosed:
            self._reply({"outcome": "error", "error": "server is closed"})
            return False
        reply: Dict[str, Any] = {
            "outcome": "delta_applied",
            "kind": delta.kind,
            "catalog_version": planning_server.service.catalog_version,
        }
        if report is not None:
            reply["seq"] = report.seq
            reply["duplicate"] = report.duplicate
            reply["findings"] = [f.code for f in report.findings]
            reply["fingerprint_changed"] = report.fingerprint_changed
            reply["refit_scheduled"] = report.refit_scheduled
        return self._reply(reply)

    def _reply(self, payload: Dict[str, Any]) -> bool:
        """Write one envelope line; False when the client vanished.

        A broken pipe / reset here is the *client's* lifecycle event,
        not a server error — counted, logged at debug level by the
        socketserver machinery, and the handler loop just ends.
        """
        try:
            self.wfile.write(
                (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            )
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            get_registry().inc(
                labelled("server_wire_errors_total", kind="client_gone")
            )
            return False


class _JsonLineTcpServer(socketserver.ThreadingTCPServer):
    """Threading TCP server bound to one :class:`PlanningServer`.

    Connection threads only parse lines and block in ``handle`` — all
    backpressure still happens in the planning server's admission path,
    so a thousand idle connections cost threads but cannot bypass the
    bounded queue.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        planning_server: PlanningServer,
    ) -> None:
        self.planning_server = planning_server
        super().__init__(address, _JsonLineHandler)
