"""The resilient serving facade: admission → plan → validate → envelope.

:class:`PlanningService` fronts the existing planners with the three
mechanisms a production planning service needs:

1. **Admission control** — the catalog is audited once at construction
   (strict by default, quarantine-and-continue on request) and every
   request passes the fast structural screens, so malformed catalogs and
   provably unsatisfiable tasks are rejected with a typed report instead
   of burning the deadline on a doomed search.
2. **Deadline-aware anytime planning** — ``serve`` drives the policy
   rung through :meth:`RLPlanner.recommend_anytime` under a monotonic
   :class:`~repro.serving.deadline.Deadline`; the rung keeps the best
   valid plan found so far and a timeout returns that snapshot (or falls
   through) instead of hanging.
3. **Degradation ladder + circuit breakers** — trained SARSA policy →
   EDA greedy → feasibility-only constructive repair, each rung guarded
   by a :class:`~repro.serving.breaker.CircuitBreaker` that trips after
   ``k`` consecutive failures/timeouts and recovers after a cool-down.
   The two fallback rungs run even when the deadline is already spent:
   they are fast by construction, and returning a slightly-late valid
   plan beats returning nothing (the envelope discloses the overrun).

Every response is a :class:`ServeResult` envelope carrying the rung
used, the deadline spent, the admission findings, the per-rung attempt
log, and the validation report — the caller never has to guess what the
service did on its behalf.
"""

from __future__ import annotations

import dataclasses
import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..baselines.eda import EDAPlanner
from ..core.catalog import Catalog, SubsetFinding
from ..core.config import PlannerConfig
from ..core.constraints import TaskSpec
from ..core.deltas import CatalogDelta, CatalogView
from ..core.env import DomainMode
from ..core.exceptions import (
    ArtifactError,
    DeltaError,
    NonRetriableError,
    UntrainedPolicyError,
)
from ..core.plan import Plan
from ..core.planner import RLPlanner
from ..core.scoring import PlanScore
from ..obs import get_registry, labelled
from .admission import AdmissionReport, audit_catalog, screen_request
from .breaker import CircuitBreaker
from .deadline import Deadline
from .fingerprint import short_key
from .journal import DeltaJournal, record_checksum
from .registry import CacheEntry, PolicyRegistry
from .repair import RepairPlanner

logger = logging.getLogger(__name__)

RUNG_SARSA = "sarsa"
RUNG_EDA = "eda"
RUNG_REPAIR = "repair"

#: Ladder order, top rung first.  Also the fault-injection task indices
#: (``slow@0`` stalls the policy rung, ``error@1`` breaks EDA, ...).
RUNGS: Tuple[str, ...] = (RUNG_SARSA, RUNG_EDA, RUNG_REPAIR)

#: Deadline-remaining histogram buckets: sub-millisecond to a minute.
DEADLINE_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
)

OUTCOME_OK = "ok"
OUTCOME_DEGRADED = "degraded"
OUTCOME_REJECTED = "rejected"
OUTCOME_FAILED = "failed"

#: How many recent (seq -> record checksum) pairs the facade retains to
#: verify that a duplicate-seq delta actually matches the record it was
#: journaled as.  Older seqs (evicted, or compacted into a snapshot)
#: still dedupe by watermark alone.
DEDUPE_VERIFY_WINDOW = 4096


@dataclass
class _ServeContext:
    """Per-request mutable scratch, threaded through one ``serve`` call.

    Provenance that earlier versions parked on ``self`` (and that two
    concurrent requests would therefore cross-contaminate) lives here:
    each request owns its context for the duration of ``_serve_inner``
    and the envelope reads it back at the end.
    """

    policy: Optional[str] = None
    plan_cache_hit: bool = False


@dataclass(frozen=True)
class ServeRequest:
    """One planning request.

    Attributes
    ----------
    start_item_id:
        Pinned opening item; ``None`` lets the service pick among the
        natural openers (prerequisite-free primaries).
    deadline_s:
        Wall-clock budget for the request (monotonic); ``None`` is
        unbounded.
    horizon:
        Optional plan-length override passed to the policy/EDA rungs.
    """

    start_item_id: Optional[str] = None
    deadline_s: Optional[float] = None
    horizon: Optional[int] = None


@dataclass(frozen=True)
class RungAttempt:
    """What one rung of the ladder did for one request."""

    rung: str
    outcome: str  # ok | invalid | timeout | error | skipped_open
    seconds: float = 0.0
    error: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - display helper
        detail = f" ({self.error})" if self.error else ""
        return f"{self.rung}: {self.outcome} in {self.seconds:.3f}s{detail}"


@dataclass(frozen=True)
class ServeResult:
    """The response envelope: plan + full provenance.

    ``outcome`` is ``ok`` (top rung, valid, in budget), ``degraded``
    (valid plan via a lower rung, over budget, or an invalid best-effort
    plan explicitly marked as such), ``rejected`` (admission refused the
    request), or ``failed`` (no rung produced any plan).
    """

    outcome: str
    plan: Optional[Plan] = None
    score: Optional[PlanScore] = None
    rung: Optional[str] = None
    degraded: bool = False
    deadline_s: Optional[float] = None
    deadline_spent: float = 0.0
    deadline_exceeded: bool = False
    admission: Optional[AdmissionReport] = None
    attempts: Tuple[RungAttempt, ...] = ()
    #: Provenance of the policy that answered (``<short_key>@v<N>``)
    #: when the request was served through a registry; ``None`` for the
    #: classic fit-and-serve path.
    policy: Optional[str] = None
    #: True when the response came from the per-policy-version plan
    #: memo — no traversal ran at all.
    plan_cache_hit: bool = False
    #: Delta provenance: how many availability deltas the live catalog
    #: had absorbed when this request was served (0 = pristine base).
    catalog_version: int = 0

    @property
    def ok(self) -> bool:
        """True when a hard-constraint-valid plan was returned."""
        return self.score is not None and self.score.is_valid

    @property
    def valid(self) -> bool:
        """Alias for :attr:`ok` (validation-report view)."""
        return self.ok

    def describe(self) -> str:
        """Multi-line envelope rendering for logs and the CLI."""
        lines = [f"outcome  : {self.outcome}"]
        if self.rung is not None:
            lines.append(f"rung     : {self.rung}")
        if self.policy is not None:
            memo = " (plan memo hit)" if self.plan_cache_hit else ""
            lines.append(f"policy   : {self.policy}{memo}")
        if self.plan is not None:
            lines.append(f"plan     : {self.plan.describe()}")
        if self.score is not None:
            lines.append(f"score    : {self.score.value:.2f}")
            lines.append(f"valid    : {self.score.report.describe()}")
        budget = "unbounded" if self.deadline_s is None else (
            f"{self.deadline_s:g}s"
        )
        exceeded = " (EXCEEDED)" if self.deadline_exceeded else ""
        lines.append(
            f"deadline : spent {self.deadline_spent:.3f}s of "
            f"{budget}{exceeded}"
        )
        if self.admission is not None and not self.admission.ok:
            lines.append("admission:")
            lines.extend(
                f"  {finding}" for finding in self.admission.findings
            )
        if self.attempts:
            lines.append("ladder   :")
            lines.extend(f"  {attempt}" for attempt in self.attempts)
        return "\n".join(lines)


@dataclass(frozen=True)
class DeltaReport:
    """What applying one world-level catalog delta did to the service."""

    kind: str
    item_id: str
    catalog_version: int
    #: Dangling-prereq findings from re-materializing the live catalog.
    findings: Tuple[SubsetFinding, ...] = ()
    #: True when the delta changed the catalog fingerprint of an
    #: attached registry's policy key (a refit may have been scheduled).
    fingerprint_changed: bool = False
    #: True when a single-flight background refit was scheduled for the
    #: new key by this call (False if one was already in flight).
    refit_scheduled: bool = False
    #: Journal sequence number this delta landed (or was deduped) at;
    #: 0 when no journal is attached.
    seq: int = 0
    #: True when the delta's seq was at/below the journal watermark —
    #: a client retry or replayed wire event acked as a no-op instead
    #: of double-applied.  ``findings`` is empty and
    #: ``catalog_version`` is the *unchanged* current version.
    duplicate: bool = False


@dataclass(frozen=True)
class JournalRecovery:
    """What :meth:`PlanningService.attach_journal` recovered at startup.

    ``restored`` is True when prior durable state existed and the live
    view was rebuilt from it.  ``quarantined`` lists the paths a
    corrupt journal was moved aside to (pristine-catalog fallback);
    empty on a clean replay.
    """

    restored: bool
    snapshot_seq: int = 0
    replayed_deltas: int = 0
    #: Stale pre-watermark tail records the journal skipped (crash
    #: landed between snapshot rename and journal truncation).
    stale_records: int = 0
    #: Tail deltas that failed to apply at replay.  Application is
    #: deterministic, so these are exactly the deltas that were
    #: journaled but then *rejected* pre-crash (e.g. closing the last
    #: open item) — skipping them reproduces the pre-crash state.
    skipped_deltas: int = 0
    last_seq: int = 0
    catalog_version: int = 0
    torn_tail: bool = False
    quarantined: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.quarantined:
            return (
                f"journal CORRUPT: quarantined "
                f"{', '.join(self.quarantined)}; serving pristine catalog"
            )
        if not self.restored:
            return "journal empty: serving pristine catalog"
        torn = ", torn tail dropped" if self.torn_tail else ""
        stale = (
            f", {self.stale_records} stale pre-watermark skipped"
            if self.stale_records
            else ""
        )
        skipped = (
            f", {self.skipped_deltas} rejected-pre-crash skipped"
            if self.skipped_deltas
            else ""
        )
        return (
            f"journal restored: snapshot seq {self.snapshot_seq} + "
            f"{self.replayed_deltas} tail delta(s){stale}{skipped}{torn} "
            f"-> catalog v{self.catalog_version} (watermark seq "
            f"{self.last_seq})"
        )


class PlanningService:
    """Resilient planning facade for one (catalog, task) pair.

    Parameters
    ----------
    catalog / task / config / mode:
        The TPP instance, exactly as for :class:`RLPlanner`.
    planner:
        An existing (possibly fitted) :class:`RLPlanner` to reuse;
        built from the other arguments when omitted.
    audit:
        Run load-time admission on the catalog at construction.
    quarantine:
        With ``audit``, drop defective items and continue on the clean
        subset instead of rejecting outright (task-level infeasibility
        still rejects).
    breaker_threshold / breaker_cooldown_s:
        Circuit-breaker tuning, shared by all rungs.
    eda_grace_s:
        Minimum wall-clock the EDA rung is allowed even after the
        deadline is spent (the fallbacks must be able to finish).
    clock:
        Injectable monotonic clock for deadlines and breakers (tests).
    fault_injector:
        Optional :class:`~repro.runner.faults.FaultInjector`; rung *i*
        of :data:`RUNGS` is perturbed as task index *i* before it runs,
        which is how the chaos suite drives the ladder deterministically.
    """

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: Optional[PlannerConfig] = None,
        mode: DomainMode = DomainMode.COURSE,
        planner: Optional[RLPlanner] = None,
        audit: bool = True,
        quarantine: bool = False,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 30.0,
        eda_grace_s: float = 2.0,
        repair_max_expansions: int = 200_000,
        clock: Callable[[], float] = time.monotonic,
        fault_injector=None,
    ) -> None:
        self.task = task
        self.mode = mode
        self.clock = clock
        self.eda_grace_s = eda_grace_s
        self.fault_injector = fault_injector
        self.admission: Optional[AdmissionReport] = None
        if audit:
            report, catalog = audit_catalog(
                catalog, task=task, mode=mode, quarantine=quarantine
            )
            report.raise_if_rejected()
            self.admission = report
        self.catalog = catalog
        if planner is not None:
            self.planner = planner
        else:
            self.planner = RLPlanner(catalog, task, config, mode=mode)
        self.config = self.planner.config
        # The fallback rungs keep per-search mutable state (EDA's
        # tie-break RNG, repair's expansion counter / stop callback), so
        # each worker thread gets its own instances; everything they
        # read (catalog, task, config) is immutable after construction.
        self._repair_max_expansions = repair_max_expansions
        self._rung_local = threading.local()
        self.breakers: Dict[str, CircuitBreaker] = {
            rung: CircuitBreaker(
                rung,
                failure_threshold=breaker_threshold,
                cooldown_s=breaker_cooldown_s,
                clock=clock,
            )
            for rung in RUNGS
        }
        # Registry wiring (attach_registry); None keeps the classic
        # fit-and-serve behaviour untouched.  _adopt_lock serializes the
        # adopt-on-version-change step so concurrent requests cannot
        # interleave the (adopt table, remember entry) pair.
        self.policy_registry: Optional[PolicyRegistry] = None
        self._policy_key: Optional[str] = None
        self._registry_episodes: Optional[int] = None
        self._registry_label: str = ""
        self._cache_entry: Optional[CacheEntry] = None
        self._adopt_lock = threading.Lock()
        # Availability churn (apply_delta): the live catalog view, the
        # catalog the adopted policy indexes (they diverge while a
        # post-churn refit is pending), and the refit-target key the
        # resolve step probes each request.
        self._delta_lock = threading.Lock()
        self._catalog_view: Optional[CatalogView] = None
        self._policy_catalog: Catalog = self.catalog
        self._pending_policy_key: Optional[str] = None
        # Durability (attach_journal): deltas are journaled+fsync'd
        # before they fold, and _journal_seq is the dedupe watermark —
        # a retried seq at/below it acks as a no-op after its payload
        # is verified against the journaled record's checksum (bounded
        # window; a seq-space collision raises instead of acking).
        self._journal: Optional[DeltaJournal] = None
        self._journal_seq: int = 0
        self._journal_checksums: Dict[int, str] = {}

    @classmethod
    def from_dataset(cls, dataset, **kwargs) -> "PlanningService":
        """Build a service from a :class:`repro.datasets.Dataset`."""
        kwargs.setdefault("config", dataset.default_config)
        return cls(
            dataset.catalog, dataset.task, mode=dataset.mode, **kwargs
        )

    # ------------------------------------------------------------------
    # Policy lifecycle
    # ------------------------------------------------------------------

    def fit(self, **kwargs):
        """Train the policy rung (delegates to :meth:`RLPlanner.fit`)."""
        return self.planner.fit(**kwargs)

    def load_policy(self, path, strict: bool = False) -> None:
        """Load a saved policy for the top rung."""
        self.planner.load_policy(path, strict=strict)

    def attach_registry(
        self,
        registry: PolicyRegistry,
        episodes: Optional[int] = None,
        label: str = "",
    ) -> None:
        """Serve the policy rung through a :class:`PolicyRegistry`.

        The policy key for this service's (catalog, task, config, mode)
        universe is derived once here; after that a request is a warm
        cache probe — a miss trains (or disk-loads) through the
        registry, a hit adopts the cached table and goes straight to
        greedy traversal with no fit and no disk read.  ``episodes``
        overrides ``config.episodes`` for registry-triggered training.
        """
        self.policy_registry = registry
        self._registry_episodes = episodes
        self._registry_label = label
        key = registry.key_for(
            self.catalog, self.task, self.config, self.mode
        )
        with self._delta_lock:
            self._policy_key = key
            self._cache_entry = None
            self._policy_catalog = self.catalog
            self._pending_policy_key = None

    # ------------------------------------------------------------------
    # Durability: the write-ahead delta journal
    # ------------------------------------------------------------------

    def attach_journal(
        self, journal: DeltaJournal, recover: bool = True
    ) -> JournalRecovery:
        """Journal every future delta; optionally replay prior state.

        Attach *after* :meth:`attach_registry` (the CLI's order): the
        replay re-derives the post-churn policy fingerprint so a
        pending refit interrupted by the crash is re-armed.

        Recovery never raises for journal damage: a corrupt journal is
        quarantined (:class:`~repro.core.exceptions.ArtifactError`
        logged loudly) and the service falls back to the pristine
        catalog rather than crash-looping.
        """
        obs = get_registry()
        if not recover:
            with self._delta_lock:
                self._journal = journal
                self._journal_seq = 0
                self._journal_checksums = {}
            return JournalRecovery(restored=False)
        with obs.span("journal.replay"):
            try:
                replay = journal.replay()
            except ArtifactError as exc:
                logger.error(
                    "journal %s is corrupt (%s); quarantining and "
                    "serving the PRISTINE catalog — durable churn "
                    "state has been lost",
                    journal.root, exc,
                )
                quarantined = journal.quarantine()
                with self._delta_lock:
                    self._journal = journal
                    self._journal_seq = 0
                    self._journal_checksums = {}
                return JournalRecovery(
                    restored=False,
                    quarantined=tuple(str(p) for p in quarantined),
                )
            if replay.empty:
                with self._delta_lock:
                    self._journal = journal
                    self._journal_seq = 0
                    self._journal_checksums = {}
                return JournalRecovery(restored=False)
            view = CatalogView(self.catalog)
            skipped = 0
            try:
                if replay.snapshot is not None:
                    state = replay.snapshot.state_payload()
                    view.restore(
                        state["closed"],
                        state["credit_overrides"],
                        state["version"],
                    )
                for delta in replay.deltas:
                    try:
                        view.apply(delta)
                    except DeltaError as exc:
                        # Deterministic apply: this delta was rejected
                        # identically pre-crash after being journaled;
                        # skipping it reproduces the exact state.
                        skipped += 1
                        logger.warning(
                            "replay: skipping seq %d (%s) — rejected "
                            "at original apply too: %s",
                            delta.seq, delta.kind, exc,
                        )
                        continue
                    obs.inc("journal_replay_deltas_total")
            except DeltaError as exc:
                # Snapshot state that cannot restore against this base
                # catalog: the journal belongs to a different universe.
                logger.error(
                    "journal %s does not fit catalog %r (%s); "
                    "quarantining and serving the PRISTINE catalog",
                    journal.root, self.catalog.name, exc,
                )
                quarantined = journal.quarantine()
                with self._delta_lock:
                    self._journal = journal
                    self._journal_seq = 0
                    self._journal_checksums = {}
                return JournalRecovery(
                    restored=False,
                    quarantined=tuple(str(p) for p in quarantined),
                )
            with self._delta_lock:
                self._catalog_view = view
                self._journal = journal
                self._journal_seq = replay.last_seq
                # Seed duplicate verification from the replayed tail
                # (recomputing each record's checksum from the decoded
                # delta reproduces the journaled value — to_dict() is
                # canonical).  Snapshot-compacted seqs are gone; their
                # duplicates dedupe by watermark alone.
                self._journal_checksums = {}
                for delta in replay.deltas:
                    self._remember_journal_checksum(delta)
                # Re-arm the pending-refit fingerprint state the crash
                # dropped: same branch apply_delta takes per delta.
                if self.policy_registry is not None:
                    live = view.live
                    new_key = self.policy_registry.key_for(
                        live, self.task, self.config, self.mode
                    )
                    if new_key != self._policy_key:
                        self._pending_policy_key = new_key
                        self.policy_registry.invalidate(
                            new_key,
                            live,
                            self.task,
                            self.config,
                            self.mode,
                            episodes=self._registry_episodes,
                            label=self._registry_label,
                        )
                    else:
                        self._pending_policy_key = None
        obs.inc("server_restarts_total")
        return JournalRecovery(
            restored=True,
            snapshot_seq=(
                replay.snapshot.seq if replay.snapshot is not None else 0
            ),
            replayed_deltas=len(replay.deltas) - skipped,
            stale_records=replay.stale_records,
            skipped_deltas=skipped,
            last_seq=replay.last_seq,
            catalog_version=view.version,
            torn_tail=replay.torn_tail,
        )

    @property
    def journal(self) -> Optional[DeltaJournal]:
        """The attached write-ahead journal, or ``None``."""
        return self._journal

    @property
    def journal_seq(self) -> int:
        """Dedupe watermark: highest journaled seq (0 = none)."""
        return self._journal_seq

    def _remember_journal_checksum(self, delta: CatalogDelta) -> None:
        """Retain (seq -> record checksum) for duplicate verification.

        Bounded at :data:`DEDUPE_VERIFY_WINDOW` entries (oldest seqs
        evicted first); caller holds ``_delta_lock``.
        """
        checksums = self._journal_checksums
        checksums[delta.seq] = record_checksum(delta.seq, delta.to_dict())
        while len(checksums) > DEDUPE_VERIFY_WINDOW:
            del checksums[next(iter(checksums))]

    @property
    def pending_policy_key(self) -> Optional[str]:
        """The post-churn policy key a refit is in flight for, if any."""
        return self._pending_policy_key

    # ------------------------------------------------------------------
    # The changing world: availability deltas
    # ------------------------------------------------------------------

    @property
    def live_catalog(self) -> Catalog:
        """The post-delta catalog (the base until the first delta)."""
        view = self._catalog_view
        return view.live if view is not None else self.catalog

    @property
    def catalog_version(self) -> int:
        """Number of availability deltas absorbed (0 = pristine base)."""
        view = self._catalog_view
        return view.version if view is not None else 0

    @property
    def repair_max_expansions(self) -> int:
        """DFS node budget the repair rung is constructed with."""
        return self._repair_max_expansions

    def apply_delta(self, delta: CatalogDelta) -> DeltaReport:
        """Fold one world-level catalog delta into the service.

        The live catalog is re-materialized (closures prune dangling
        prerequisite edges; reopens restore them), subsequent requests
        are screened and planned against it, and — when a registry is
        attached — a changed catalog fingerprint schedules exactly one
        single-flight background refit for the new policy key while the
        stale policy keeps serving (restricted to live items).

        Constraint deltas are session-scoped (they retarget a
        :class:`~repro.serving.replan.ReplanSession`'s task); passing
        one here raises :class:`DeltaError`.

        With a journal attached the delta is fsync'd to the write-ahead
        log *before* it folds (crash after the ack ⇒ replay re-applies
        it), and a ``seq`` at or below the journal watermark is acked
        as a duplicate no-op — at-least-once delivery composes with
        exactly-once application.  A "duplicate" whose payload differs
        from the record journaled at that seq (checked over a bounded
        recent window) is a seq-space collision and raises
        :class:`DeltaError` instead of silently discarding a genuine
        world event.  Unstamped deltas (``seq == 0``) are stamped
        ``watermark + 1``.
        """
        if not isinstance(delta, CatalogDelta):
            raise DeltaError(
                "PlanningService.apply_delta takes CatalogDelta events; "
                "constraint deltas are session-scoped (ReplanSession.ingest)"
            )
        if delta.item_id not in self.catalog:
            # Pre-journal validation: a delta naming an item the base
            # catalog has never heard of is wire garbage, not a world
            # event — reject it before it pollutes the journal (the
            # same check apply() would make, hoisted above the append).
            raise DeltaError(
                f"delta {delta.kind!r} references item {delta.item_id!r} "
                f"unknown to base catalog {self.catalog.name!r}"
            )
        obs = get_registry()
        with self._delta_lock:
            journal = self._journal
            if journal is not None:
                if delta.seq != 0 and delta.seq <= self._journal_seq:
                    # Watermark alone cannot distinguish a genuine
                    # retry from a client that miscounts seqs and
                    # stamps a *new* world event with a used one —
                    # verify the payload against the record actually
                    # journaled at that seq (bounded window).
                    journaled = self._journal_checksums.get(delta.seq)
                    if journaled is not None and journaled != (
                        record_checksum(delta.seq, delta.to_dict())
                    ):
                        obs.inc("journal_duplicate_mismatch_total")
                        raise DeltaError(
                            f"delta seq {delta.seq} ({delta.kind!r} on "
                            f"{delta.item_id!r}) does not match the "
                            f"record journaled at that seq: seq-space "
                            f"collision, refusing to ack as duplicate"
                        )
                    obs.inc("journal_duplicate_deltas_total")
                    return DeltaReport(
                        kind=delta.kind,
                        item_id=delta.item_id,
                        catalog_version=(
                            self._catalog_view.version
                            if self._catalog_view is not None
                            else 0
                        ),
                        seq=delta.seq,
                        duplicate=True,
                    )
                if delta.seq == 0:
                    delta = dataclasses.replace(
                        delta, seq=self._journal_seq + 1
                    )
                # Write-ahead: journal (fsync) before fold.  If the
                # fold below rejects the delta, replay rejects it
                # identically and skips it — state stays reproducible.
                journal.append(delta)
                self._journal_seq = delta.seq
                self._remember_journal_checksum(delta)
            if self._catalog_view is None:
                self._catalog_view = CatalogView(self.catalog)
            findings = self._catalog_view.apply(delta)
            version = self._catalog_view.version
            fingerprint_changed = False
            refit_scheduled = False
            if self.policy_registry is not None:
                live = self._catalog_view.live
                new_key = self.policy_registry.key_for(
                    live, self.task, self.config, self.mode
                )
                if new_key != self._policy_key:
                    fingerprint_changed = True
                    if new_key != self._pending_policy_key:
                        self._pending_policy_key = new_key
                        refit_scheduled = (
                            self.policy_registry.invalidate(
                                new_key,
                                live,
                                self.task,
                                self.config,
                                self.mode,
                                episodes=self._registry_episodes,
                                label=self._registry_label,
                            )
                        )
                else:
                    # The delta cycled the world back to the adopted
                    # policy's universe (e.g. close then reopen).
                    self._pending_policy_key = None
            if journal is not None and journal.should_compact():
                journal.write_snapshot(
                    self._catalog_view.state_payload(),
                    self._journal_seq,
                )
        obs.inc(labelled("deltas_applied_total", kind=delta.kind))
        for finding in findings:
            obs.inc(
                labelled("delta_prereq_findings_total", code=finding.code)
            )
        return DeltaReport(
            kind=delta.kind,
            item_id=delta.item_id,
            catalog_version=version,
            findings=findings,
            fingerprint_changed=fingerprint_changed,
            refit_scheduled=refit_scheduled,
            seq=delta.seq,
        )

    def fork_view(self) -> CatalogView:
        """A session-scoped :class:`CatalogView` seeded with today's state.

        The fork is based on the *pristine* base catalog (not the pruned
        ``live_catalog``) with the service's current closed-set/credit
        overrides replayed in, so a session opened after a ``close`` can
        still ingest a later ``reopen`` of that item — the id resolves
        against the full base even though the live catalog dropped it.
        """
        with self._delta_lock:
            if self._catalog_view is not None:
                return self._catalog_view.fork()
        return CatalogView(self.catalog)

    def open_session(
        self,
        plan: Plan,
        executed: int = 0,
        session_id: str = "",
        repair_only_below_s: Optional[float] = None,
    ):
        """Start a :class:`~repro.serving.replan.ReplanSession` over a
        partially-executed plan (snapshotting today's live catalog)."""
        from .replan import ReplanSession

        kwargs = {}
        if repair_only_below_s is not None:
            kwargs["repair_only_below_s"] = repair_only_below_s
        return ReplanSession(
            self, plan, executed=executed, session_id=session_id, **kwargs
        )

    def replan(
        self,
        session,
        deadline_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ):
        """The ``replan`` entry point: suffix-only replanning for a
        session, with delta provenance in the returned envelope."""
        return session.replan(deadline_s=deadline_s, deadline=deadline)

    @property
    def eda(self) -> EDAPlanner:
        """This thread's EDA rung (lazily built; see ``_rung_local``).

        Rebuilt when the live catalog has moved past the version this
        thread's instance was constructed against, so fallback rungs
        never offer closed items.
        """
        version = self.catalog_version
        cached = getattr(self._rung_local, "eda", None)
        if cached is None or cached[0] != version:
            eda = EDAPlanner(
                self.live_catalog, self.task, config=self.config,
                mode=self.mode, seed=self.config.seed,
            )
            self._rung_local.eda = (version, eda)
            return eda
        return cached[1]

    @property
    def repair(self) -> RepairPlanner:
        """This thread's repair rung (lazily built; see ``_rung_local``)."""
        version = self.catalog_version
        cached = getattr(self._rung_local, "repair", None)
        if cached is None or cached[0] != version:
            repair = RepairPlanner(
                self.live_catalog, self.task, mode=self.mode,
                max_expansions=self._repair_max_expansions,
            )
            self._rung_local.repair = (version, repair)
            return repair
        return cached[1]

    @property
    def default_start(self) -> str:
        """The opener used when a request does not pin one."""
        live = self.live_catalog
        for item in live.primaries():
            if item.prerequisites.is_empty:
                return item.item_id
        return live.items[0].item_id

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serve(
        self,
        request: Optional[ServeRequest] = None,
        *,
        start_item_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
        horizon: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> ServeResult:
        """Serve one request through the ladder; never raises for
        request-level problems — the envelope carries the outcome.

        ``deadline`` lets a front-end pass a budget that started ticking
        at *arrival* (so queueing time counts against it) instead of a
        fresh one starting now.

        (Programming errors and ``KeyboardInterrupt``/``SystemExit``
        still propagate.)
        """
        if request is None:
            request = ServeRequest(
                start_item_id=start_item_id,
                deadline_s=deadline_s,
                horizon=horizon,
            )
        obs = get_registry()
        if deadline is None:
            deadline = Deadline(request.deadline_s, clock=self.clock)
        with obs.span("serve"):
            result = self._serve_inner(request, deadline)
        obs.inc(
            labelled(
                "serve_requests_total",
                rung=result.rung or "none",
                outcome=result.outcome,
            )
        )
        obs.histogram(
            "serve_deadline_remaining_seconds", DEADLINE_BUCKETS
        ).observe(deadline.remaining())
        return result

    def _serve_inner(
        self, request: ServeRequest, deadline: Deadline
    ) -> ServeResult:
        obs = get_registry()
        ctx = _ServeContext()
        with obs.span("serve.admission"):
            # Screen against the *live* (post-delta) catalog, not the
            # admission-time snapshot: a start item that has since
            # closed, or a universe churn made infeasible, must reject
            # here instead of failing deep inside a rung.
            screen = screen_request(
                self.live_catalog, self.task, self.mode,
                request.start_item_id,
            )
        if screen.rejected:
            for finding in screen.findings:
                obs.inc(
                    labelled(
                        "admission_rejects_total", code=finding.code
                    )
                )
            return ServeResult(
                outcome=OUTCOME_REJECTED,
                admission=screen,
                deadline_s=request.deadline_s,
                deadline_spent=deadline.elapsed(),
                deadline_exceeded=deadline.expired,
                catalog_version=self.catalog_version,
            )

        attempts: List[RungAttempt] = []
        best: Optional[Tuple[Plan, PlanScore, str]] = None
        for index, rung in enumerate(RUNGS):
            breaker = self.breakers[rung]
            if not breaker.allows():
                attempts.append(RungAttempt(rung, "skipped_open"))
                continue
            t0 = self.clock()
            try:
                with obs.span(f"serve.rung.{rung}"):
                    if self.fault_injector is not None:
                        self.fault_injector.perturb(index)
                    plan, score = self._run_rung(
                        rung, request, deadline, ctx
                    )
            except NonRetriableError as exc:
                # The request itself is broken (e.g. unsatisfiable
                # task surfaced mid-search): no lower rung can help.
                attempts.append(
                    RungAttempt(
                        rung, "error", self.clock() - t0,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                breaker.record_failure()
                return self._envelope(
                    OUTCOME_REJECTED, None, request, deadline, screen,
                    attempts, ctx,
                )
            except Exception as exc:  # noqa: BLE001 - rung isolation:
                # any rung failure (injected fault, missing policy,
                # artifact rot) must degrade, not propagate.
                attempts.append(
                    RungAttempt(
                        rung, "error", self.clock() - t0,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                breaker.record_failure()
                continue
            elapsed = self.clock() - t0
            if plan is None:
                attempts.append(
                    RungAttempt(
                        rung, "timeout", elapsed,
                        "deadline expired before any plan completed",
                    )
                )
                breaker.record_failure()
                continue
            if score.is_valid:
                attempts.append(RungAttempt(rung, "ok", elapsed))
                breaker.record_success()
                best = (plan, score, rung)
                break
            # A complete but invalid plan: deterministic, so the rung
            # is healthy (no breaker trip) — keep it as best-effort and
            # fall one rung down.
            attempts.append(
                RungAttempt(
                    rung, "invalid", elapsed,
                    score.report.describe(),
                )
            )
            breaker.record_success()
            if best is None:
                best = (plan, score, rung)
        if best is None:
            return self._envelope(
                OUTCOME_FAILED, None, request, deadline, screen, attempts,
                ctx,
            )
        return self._envelope(
            None, best, request, deadline, screen, attempts, ctx
        )

    def _envelope(
        self,
        outcome: Optional[str],
        best: Optional[Tuple[Plan, PlanScore, str]],
        request: ServeRequest,
        deadline: Deadline,
        screen: AdmissionReport,
        attempts: List[RungAttempt],
        ctx: _ServeContext,
    ) -> ServeResult:
        plan = score = rung = None
        if best is not None:
            plan, score, rung = best
        exceeded = deadline.expired
        if outcome is None:
            degraded = (
                rung != RUNG_SARSA
                or not score.is_valid
                or exceeded
            )
            outcome = OUTCOME_DEGRADED if degraded else OUTCOME_OK
        else:
            degraded = outcome != OUTCOME_OK
        return ServeResult(
            outcome=outcome,
            plan=plan,
            score=score,
            rung=rung,
            degraded=degraded,
            deadline_s=request.deadline_s,
            deadline_spent=deadline.elapsed(),
            deadline_exceeded=exceeded,
            admission=screen,
            attempts=tuple(attempts),
            policy=ctx.policy if rung == RUNG_SARSA else None,
            plan_cache_hit=(
                ctx.plan_cache_hit if rung == RUNG_SARSA else False
            ),
            catalog_version=self.catalog_version,
        )

    # ------------------------------------------------------------------
    # Rung execution
    # ------------------------------------------------------------------

    def _run_rung(
        self,
        rung: str,
        request: ServeRequest,
        deadline: Deadline,
        ctx: _ServeContext,
    ) -> Tuple[Optional[Plan], Optional[PlanScore]]:
        if rung == RUNG_SARSA:
            return self._run_sarsa(request, deadline, ctx)
        if rung == RUNG_EDA:
            return self._run_eda(request, deadline)
        return self._run_repair(request)

    def _run_sarsa(
        self,
        request: ServeRequest,
        deadline: Deadline,
        ctx: _ServeContext,
    ) -> Tuple[Optional[Plan], Optional[PlanScore]]:
        """Anytime policy rung: best valid snapshot under the deadline.

        With a registry attached, the rung first resolves the policy
        for this universe (warm cache probe on the steady state) and
        consults the per-version plan memo — a memo hit answers without
        any traversal at all.  A pinned start is honoured exactly (one
        rollout set, matching a bare :meth:`RLPlanner.recommend` — the
        happy path adds only the envelope); otherwise the natural
        openers are swept best-first until the deadline fires.
        """
        entry = self._resolve_policy(ctx)
        allowed = self._sarsa_allowed()
        if entry is not None and allowed is None:
            # The plan memo is only trustworthy when the policy's
            # catalog IS the live universe — a memoized plan may hold
            # items that have since closed.
            hit = entry.cached_plan(request.start_item_id, request.horizon)
            if hit is not None:
                get_registry().inc("serve_plan_memo_hits_total")
                ctx.plan_cache_hit = True
                return hit
        if entry is None and (
            not self.planner.is_fitted
            or self.planner.qtable.update_count == 0
        ):
            # Satellite guard: an unfitted (or zero-update) table would
            # "succeed" with an untrained greedy traversal — garbage
            # with a straight face.  Raise the typed retriable error so
            # rung isolation records it and the ladder degrades to EDA.
            get_registry().inc("serve_untrained_policy_total")
            raise UntrainedPolicyError(
                "policy rung has no trained Q-table: call fit(), load a "
                "policy artifact (serve --policy), or attach a registry "
                "(serve --registry); degrading to the EDA rung"
            )
        starts = (
            [request.start_item_id]
            if request.start_item_id is not None
            else None
        )
        plan, score, _ = self.planner.recommend_anytime(
            start_item_ids=starts,
            horizon=request.horizon,
            should_stop=deadline.should_stop,
            stop_when_valid=True,
            allowed_item_ids=allowed,
        )
        if (
            entry is not None
            and allowed is None
            and plan is not None
            and score is not None
            and score.is_valid
        ):
            # A valid stop_when_valid result is deterministic for this
            # (table, start, horizon) regardless of the deadline — safe
            # to memoize.  Invalid/truncated snapshots are not (nor is
            # anything produced under an availability filter).
            entry.store_plan(
                request.start_item_id, request.horizon, plan, score
            )
        return plan, score

    def _sarsa_allowed(self):
        """Availability filter for the policy rung, or ``None``.

        ``None`` when the adopted policy already indexes the live
        universe (no churn, or the post-churn refit has been adopted);
        otherwise the frozen live id set, so a stale policy keeps
        serving without ever offering a closed item.
        """
        view = self._catalog_view
        if view is None:
            return None
        live = view.live
        if self.planner.catalog is live:
            return None
        if set(self.planner.catalog.item_ids) == set(live.item_ids):
            return None
        return frozenset(live.item_ids)

    def _resolve_policy(self, ctx: _ServeContext) -> Optional[CacheEntry]:
        """Resolve the policy rung's table through the registry.

        Returns ``None`` when no registry is attached (classic path).
        Otherwise: acquire through cache → disk → train, adopt the
        table into the planner only when the version actually changed
        (under ``_adopt_lock`` — two concurrent requests racing a
        version swap must not interleave the adopt/remember pair), and
        stamp the request's policy provenance on its context.
        """
        if self.policy_registry is None:
            return None
        pending = self._pending_policy_key
        if pending is not None:
            fresh = self.policy_registry.peek(pending)
            if fresh is not None:
                self._adopt_refit(pending, fresh)
            # else: the refit hasn't landed — keep serving the stale
            # version (restricted to live items by _sarsa_allowed).
        entry, _source = self.policy_registry.acquire(
            self._policy_catalog,
            self.task,
            self.config,
            self.mode,
            episodes=self._registry_episodes,
            label=self._registry_label,
            key=self._policy_key,
        )
        if entry is not self._cache_entry:
            with self._adopt_lock:
                if entry is not self._cache_entry:
                    self.planner.adopt_policy(entry.qtable)
                    self._cache_entry = entry
        ctx.policy = (
            f"{short_key(entry.meta.key)}@v{entry.meta.version}"
        )
        return entry

    def _adopt_refit(self, key: str, entry: CacheEntry) -> None:
        """Swap in a landed post-churn refit (new catalog universe).

        ``adopt_policy`` refuses a table whose item-id set differs from
        the planner's catalog, so the planner is rebuilt over the refit
        table's own catalog first; the old policy key retires and the
        memo naturally starts fresh with the new entry.

        The pending-key fields are written by ``apply_delta`` under
        ``_delta_lock``, so this method checks and clears them under the
        same lock — and re-checks right before the swap — ensuring a
        delta that scheduled a newer refit while the planner was being
        rebuilt is never clobbered (its pending key stays armed and this
        stale refit is discarded).
        """
        with self._adopt_lock:
            with self._delta_lock:
                if self._pending_policy_key != key:
                    return
            planner = RLPlanner(
                entry.qtable.catalog, self.task, self.config,
                mode=self.mode,
            )
            planner.adopt_policy(entry.qtable)
            with self._delta_lock:
                if self._pending_policy_key != key:
                    return
                self.planner = planner
                self._policy_catalog = entry.qtable.catalog
                self._policy_key = key
                self._pending_policy_key = None
                self._cache_entry = entry
            get_registry().inc("serve_policy_swaps_total")

    def _run_eda(
        self, request: ServeRequest, deadline: Deadline
    ) -> Tuple[Optional[Plan], Optional[PlanScore]]:
        """Greedy fallback, granted a grace budget past the deadline.

        EDA is O(H·|I|) — milliseconds — so it runs even when the
        policy rung already spent the request budget; the grace guard
        only exists to bound pathological catalogs.
        """
        grace = Deadline(
            max(deadline.remaining(), self.eda_grace_s), clock=self.clock
        )
        start = request.start_item_id or self.default_start
        plan = self.eda.recommend(
            start, horizon=request.horizon,
            should_stop=grace.should_stop,
        )
        if grace.expired and len(plan) < self.task.hard.plan_length:
            # Partial plan cut off by the guard: surface as a timeout
            # rather than pretending the greedy run completed.
            return None, None
        return plan, self.planner.scorer.score(plan)

    def _run_repair(
        self, request: ServeRequest
    ) -> Tuple[Optional[Plan], Optional[PlanScore]]:
        """Floor rung: constructive feasibility search, no deadline.

        Deliberately unbounded by the request deadline — this is the
        last chance to return a valid plan, and its DFS is capped by
        ``max_expansions`` anyway.
        """
        plan = self.repair.recommend(request.start_item_id)
        return plan, self.planner.scorer.score(plan)
