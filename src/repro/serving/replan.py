"""Mid-plan replanning under availability churn.

A :class:`ReplanSession` holds a partially-executed plan (the first
``executed`` slots are committed history), ingests a stream of
:class:`~repro.core.deltas.CatalogDelta` / ``ConstraintDelta`` events,
classifies each one, and — when asked — replans *only the suffix* under
a :class:`~repro.serving.deadline.Deadline`, reusing the serving
degradation ladder:

1. **sarsa** — :meth:`RLPlanner.complete_plan` extends the committed
   prefix through the trained Q-table, restricted to the live item set
   (no retrain needed for suffix-only churn).  The prefix-loaded
   :class:`~repro.core.plan.PlanBuilder` replays its
   :class:`~repro.core.similarity.IncrementalSimilarity` state once and
   keeps it in sync, so reward evaluations never rescan the prefix.
2. **eda** — greedy :meth:`EDAPlanner.complete` over the live catalog,
   under the same grace budget the serving facade grants.
3. **repair** — :class:`RepairPlanner` with the prefix *pinned*
   (bounded-latency, feasibility-only).  When the deadline is already
   tight the ladder skips straight here.

Delta classification
--------------------
benign
    The current plan remains valid as-is (closure of an unplanned item,
    any reopen, a credit/constraint move the plan still satisfies).
suffix_only
    Only slots ``>= executed`` must change (closure of a suffix item, a
    credit/budget move the suffix can absorb).
prefix_invalidating
    Committed history itself is now illegal (a prefix item closed, or
    the prefix alone exceeds a tightened trip budget).  The session
    cannot repair this by replanning — history is immutable — so it
    reports ``invalidated`` instead of serving a rewritten past.

Every ingest and replan appends to a deterministic decision log (no
wall-clock values), so replaying the same seeded churn schedule yields
byte-identical logs (:meth:`ReplanSession.log_json`).
"""

from __future__ import annotations

import dataclasses
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines.eda import EDAPlanner
from ..core.catalog import Catalog
from ..core.constraints import TaskSpec
from ..core.deltas import (
    DELTA_CLOSE,
    DELTA_REOPEN,
    CatalogView,
    ConstraintDelta,
    Delta,
)
from ..core.env import DomainMode
from ..core.exceptions import PlanningError
from ..core.items import Item
from ..core.plan import Plan
from ..core.scoring import PlanScore, PlanScorer
from ..obs import get_registry, labelled
from .deadline import Deadline

#: Delta classifications.
CLASS_BENIGN = "benign"
CLASS_SUFFIX_ONLY = "suffix_only"
CLASS_PREFIX_INVALIDATING = "prefix_invalidating"

#: Replan outcomes.
REPLAN_OK = "ok"
REPLAN_DEGRADED = "degraded"
REPLAN_NOOP = "noop"
REPLAN_INVALIDATED = "invalidated"
REPLAN_FAILED = "failed"
REPLAN_DRAINING = "draining"
REPLAN_SHED = "shed"

#: Ladder rungs (mirror the facade's names so dashboards line up).
RUNG_SARSA = "sarsa"
RUNG_EDA = "eda"
RUNG_REPAIR = "repair"

REPLAN_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
)
SUFFIX_LENGTH_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0,
)

_CLASS_SEVERITY = {
    CLASS_BENIGN: 0,
    CLASS_SUFFIX_ONLY: 1,
    CLASS_PREFIX_INVALIDATING: 2,
}


@dataclass(frozen=True)
class AppliedDelta:
    """Provenance record of one delta folded into a session."""

    seq: int
    kind: str
    classification: str
    item_id: Optional[str] = None
    value: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "classification": self.classification,
        }
        if self.item_id is not None:
            out["item"] = self.item_id
        if self.value is not None:
            out["value"] = self.value
        return out


@dataclass(frozen=True)
class ReplanAttempt:
    """What one ladder rung did during a replan."""

    rung: str
    outcome: str  # ok | invalid | timeout | error | skipped
    error: Optional[str] = None


@dataclass(frozen=True)
class ReplanResult:
    """The replan envelope: new plan (if any) + full delta provenance."""

    outcome: str
    plan: Optional[Plan] = None
    score: Optional[PlanScore] = None
    rung: Optional[str] = None
    trigger: str = "manual"
    suffix_start: int = 0
    deadline_s: Optional[float] = None
    deadline_spent: float = 0.0
    deadline_exceeded: bool = False
    attempts: Tuple[ReplanAttempt, ...] = ()
    #: The deltas this replan was answering (unresolved at call time).
    deltas: Tuple[AppliedDelta, ...] = ()
    session_id: str = ""

    @property
    def ok(self) -> bool:
        """True when a hard-constraint-valid plan is attached."""
        return (
            self.outcome in (REPLAN_OK, REPLAN_DEGRADED, REPLAN_NOOP)
            and self.score is not None
            and self.score.is_valid
        )

    def describe(self) -> str:
        lines = [f"outcome  : {self.outcome} (trigger {self.trigger})"]
        if self.rung is not None:
            lines.append(f"rung     : {self.rung}")
        if self.plan is not None:
            lines.append(f"plan     : {self.plan.describe()}")
            lines.append(f"suffix   : from slot {self.suffix_start}")
        if self.deltas:
            lines.append(
                "deltas   : "
                + ", ".join(
                    f"{d.kind}:{d.item_id or d.value}[{d.classification}]"
                    for d in self.deltas
                )
            )
        for attempt in self.attempts:
            detail = f" ({attempt.error})" if attempt.error else ""
            lines.append(f"  {attempt.rung}: {attempt.outcome}{detail}")
        return "\n".join(lines)


@dataclass
class _SessionState:
    """Mutable session fields guarded by the session lock."""

    plan: Plan
    executed: int
    task: TaskSpec
    seq: int = 0
    unresolved: List[AppliedDelta] = field(default_factory=list)
    log: List[Dict[str, object]] = field(default_factory=list)
    drained: bool = False


class ReplanSession:
    """One partially-executed plan surviving a changing world.

    Parameters
    ----------
    service:
        The owning :class:`~repro.serving.facade.PlanningService`
        (supplies the trained planner, config, mode, and clock).
    plan:
        The currently-adopted plan.
    executed:
        How many leading slots are committed history (immutable).
    session_id:
        Display/routing id assigned by the server.
    repair_only_below_s:
        When the replan deadline's remaining budget is at or below this,
        skip the learned rungs and go straight to bounded repair.
    """

    def __init__(
        self,
        service,
        plan: Plan,
        executed: int = 0,
        session_id: str = "",
        repair_only_below_s: float = 0.01,
    ) -> None:
        if not 0 <= executed <= len(plan):
            raise PlanningError(
                f"executed={executed} out of range for a "
                f"{len(plan)}-item plan"
            )
        self.service = service
        self.session_id = session_id
        self.repair_only_below_s = repair_only_below_s
        # The view must be based on the *pristine* base catalog with the
        # service's current churn state replayed in (fork_view) — basing
        # it on the pruned live catalog would make a later ``reopen`` of
        # an already-closed item unresolvable ("unknown to base").
        fork = getattr(service, "fork_view", None)
        self.view = (
            fork() if callable(fork) else CatalogView(service.live_catalog)
        )
        self._state = _SessionState(
            plan=plan, executed=executed, task=service.task
        )
        self._lock = threading.RLock()
        self.last_result: Optional[ReplanResult] = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    @property
    def plan(self) -> Plan:
        return self._state.plan

    @property
    def executed(self) -> int:
        return self._state.executed

    @property
    def task(self) -> TaskSpec:
        return self._state.task

    @property
    def drained(self) -> bool:
        return self._state.drained

    @property
    def pending_deltas(self) -> int:
        """Deltas ingested but not yet incorporated into the plan."""
        return len(self._state.unresolved)

    @property
    def committed(self) -> Tuple[Item, ...]:
        """The immutable prefix, re-costed through live credit overrides.

        History keeps its items even when they have since closed — only
        their *credits* track the live world (a price change applies to
        a booked-but-unpaid visit; a closure does not unbook it).
        """
        prefix = self._state.plan.items[: self._state.executed]
        return tuple(self.view.resolve(item) for item in prefix)

    def advance(self, steps: int = 1) -> int:
        """Mark ``steps`` more slots as executed; returns the new count."""
        with self._lock:
            new = self._state.executed + steps
            if not 0 <= new <= len(self._state.plan):
                raise PlanningError(
                    f"cannot advance to {new} of a "
                    f"{len(self._state.plan)}-item plan"
                )
            self._state.executed = new
            return new

    def prefix_valid(self) -> bool:
        """Is the committed history still legal in the live world?

        False when a prefix item has closed, or (trip mode) the
        re-costed prefix alone exceeds the budget.  Recomputed from the
        view, so a ``reopen`` heals a previously invalidated session.
        """
        closed = self.view.closed_ids
        prefix = self.committed
        if any(item.item_id in closed for item in prefix):
            return False
        if self.service.mode is DomainMode.TRIP:
            budget = self._state.task.hard.min_credits
            if sum(i.credits for i in prefix) > budget + 1e-9:
                return False
        return True

    def decision_log(self) -> Tuple[Dict[str, object], ...]:
        """The deterministic decision log (no wall-clock values)."""
        with self._lock:
            return tuple(dict(entry) for entry in self._state.log)

    def log_json(self) -> str:
        """Canonical JSON of the decision log — byte-identical across
        replays of the same seeded schedule."""
        return json.dumps(
            list(self.decision_log()),
            sort_keys=True,
            separators=(",", ":"),
        )

    # ------------------------------------------------------------------
    # Delta ingestion
    # ------------------------------------------------------------------

    def ingest(self, delta: Delta) -> str:
        """Fold one delta into the session; returns its classification."""
        with self._lock:
            if self._state.drained:
                raise PlanningError(
                    f"session {self.session_id or '?'} is drained"
                )
            classification = self._classify(delta)
            if isinstance(delta, ConstraintDelta):
                hard = dataclasses.replace(
                    self._state.task.hard, min_credits=delta.value
                )
                self._state.task = dataclasses.replace(
                    self._state.task, hard=hard
                )
                record = AppliedDelta(
                    seq=self._next_seq(),
                    kind=delta.kind,
                    classification=classification,
                    value=delta.value,
                )
            else:
                self.view.apply(delta)
                record = AppliedDelta(
                    seq=self._next_seq(),
                    kind=delta.kind,
                    classification=classification,
                    item_id=delta.item_id,
                )
            if classification is not CLASS_BENIGN:
                self._state.unresolved.append(record)
            entry: Dict[str, object] = {
                "event": "delta",
                "seq": record.seq,
                "kind": record.kind,
                "classification": classification,
            }
            if delta.seq != 0:
                # Provenance for cross-restart correlation: the wire /
                # journal sequence number this event carried (the
                # session's own seq restarts at 1 per session, the
                # journal watermark does not).  Seeded churn schedules
                # stamp identical seqs on replay, so decision logs stay
                # byte-identical.
                entry["wire_seq"] = delta.seq
            if record.item_id is not None:
                entry["item"] = record.item_id
            if record.value is not None:
                entry["value"] = record.value
            self._state.log.append(entry)
        obs = get_registry()
        obs.inc(labelled("deltas_applied_total", kind=delta.kind))
        return classification

    def _next_seq(self) -> int:
        self._state.seq += 1
        return self._state.seq

    def _classify(self, delta: Delta) -> str:
        """Classify against the *current* plan/prefix (see module doc)."""
        state = self._state
        trip = self.service.mode is DomainMode.TRIP
        prefix = state.plan.items[: state.executed]
        suffix = state.plan.items[state.executed:]
        prefix_ids = {item.item_id for item in prefix}
        suffix_ids = {item.item_id for item in suffix}

        def credits_of(item: Item, override: Optional[float] = None) -> float:
            if override is not None and item.item_id == override_id:
                return override
            return self.view.resolve(item).credits

        override_id = None
        if isinstance(delta, ConstraintDelta):
            plan_total = sum(credits_of(i) for i in state.plan.items)
            if trip:
                prefix_total = sum(credits_of(i) for i in prefix)
                if prefix_total > delta.value + 1e-9:
                    return CLASS_PREFIX_INVALIDATING
                if plan_total <= delta.value + 1e-9:
                    return CLASS_BENIGN
                return CLASS_SUFFIX_ONLY
            if plan_total >= delta.value - 1e-9:
                return CLASS_BENIGN
            return CLASS_SUFFIX_ONLY

        if delta.kind == DELTA_REOPEN:
            return CLASS_BENIGN
        if delta.kind == DELTA_CLOSE:
            if delta.item_id in prefix_ids:
                return CLASS_PREFIX_INVALIDATING
            if delta.item_id in suffix_ids:
                return CLASS_SUFFIX_ONLY
            return CLASS_BENIGN
        # credit_change: judge by what the re-costed plan looks like.
        if delta.item_id not in prefix_ids and delta.item_id not in suffix_ids:
            return CLASS_BENIGN
        override_id = delta.item_id
        assert delta.credits is not None
        plan_total = sum(
            credits_of(i, override=delta.credits) for i in state.plan.items
        )
        budget = state.task.hard.min_credits
        if trip:
            prefix_total = sum(
                credits_of(i, override=delta.credits) for i in prefix
            )
            if prefix_total > budget + 1e-9:
                return CLASS_PREFIX_INVALIDATING
            if plan_total <= budget + 1e-9:
                return CLASS_BENIGN
            return CLASS_SUFFIX_ONLY
        if plan_total >= budget - 1e-9:
            return CLASS_BENIGN
        return CLASS_SUFFIX_ONLY

    # ------------------------------------------------------------------
    # Replanning
    # ------------------------------------------------------------------

    def replan(
        self,
        deadline_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        trigger: Optional[str] = None,
    ) -> ReplanResult:
        """Replan the suffix under a deadline; returns the envelope.

        Never raises for request-level problems — the envelope carries
        the outcome.  On ``ok``/``degraded`` the session adopts the new
        plan; on ``noop`` nothing needed to change; on ``invalidated``
        the committed history itself is illegal and the caller must
        decide (history is never rewritten); on ``failed`` no valid
        completion was found and the previous plan stays adopted.
        """
        obs = get_registry()
        if deadline is None:
            deadline = Deadline(deadline_s, clock=self.service.clock)
        with self._lock:
            state = self._state
            pending = tuple(state.unresolved)
            if trigger is None:
                trigger = self._dominant_trigger(pending)
            with obs.span("replan"):
                result = self._replan_locked(
                    deadline, deadline_s, trigger, pending
                )
            self.last_result = result
        obs.inc(
            labelled(
                "replan_requests_total",
                trigger=trigger,
                outcome=result.outcome,
            )
        )
        obs.histogram(
            "replan_latency_seconds", REPLAN_LATENCY_BUCKETS
        ).observe(result.deadline_spent)
        obs.histogram(
            "replan_suffix_length", SUFFIX_LENGTH_BUCKETS
        ).observe(float(len(self._state.plan) - self._state.executed))
        return result

    def _dominant_trigger(self, pending: Tuple[AppliedDelta, ...]) -> str:
        if not pending:
            return "manual"
        return max(
            (d.classification for d in pending),
            key=lambda c: _CLASS_SEVERITY[c],
        )

    def _replan_locked(
        self,
        deadline: Deadline,
        deadline_s: Optional[float],
        trigger: str,
        pending: Tuple[AppliedDelta, ...],
    ) -> ReplanResult:
        state = self._state
        if state.drained:
            return self._finish(
                REPLAN_DRAINING, None, None, None, trigger, pending,
                deadline, deadline_s, (),
            )
        if not self.prefix_valid():
            return self._finish(
                REPLAN_INVALIDATED, None, None, None, trigger, pending,
                deadline, deadline_s, (),
            )
        if not pending:
            scorer = PlanScorer(state.task, mode=self.service.mode)
            score = scorer.score(state.plan)
            return self._finish(
                REPLAN_NOOP, state.plan, score, None, trigger, pending,
                deadline, deadline_s, (),
            )
        attempts: List[ReplanAttempt] = []
        best = self._plan_suffix(deadline, attempts)
        if best is None or not best[1].is_valid:
            outcome = REPLAN_FAILED
            plan = best[0] if best else None
            score = best[1] if best else None
            rung = best[2] if best else None
        else:
            plan, score, rung = best
            degraded = rung != RUNG_SARSA or deadline.expired
            outcome = REPLAN_DEGRADED if degraded else REPLAN_OK
        return self._finish(
            outcome, plan, score, rung, trigger, pending,
            deadline, deadline_s, tuple(attempts),
        )

    def _plan_suffix(
        self,
        deadline: Deadline,
        attempts: List[ReplanAttempt],
    ) -> Optional[Tuple[Plan, PlanScore, str]]:
        """Run the sarsa→eda→repair ladder over the suffix only."""
        state = self._state
        service = self.service
        prefix = self.committed
        live = self.view.live
        horizon = state.task.hard.plan_length
        scorer = PlanScorer(state.task, mode=service.mode)
        allowed = frozenset(live.item_ids)
        tight = (
            deadline.seconds is not None
            and deadline.remaining() <= self.repair_only_below_s
        )
        rungs: Tuple[str, ...] = (
            (RUNG_REPAIR,) if tight else (RUNG_SARSA, RUNG_EDA, RUNG_REPAIR)
        )
        best: Optional[Tuple[Plan, PlanScore, str]] = None
        best_key = None
        for rung in rungs:
            try:
                plan = self._run_rung(
                    rung, prefix, live, horizon, allowed, deadline, scorer
                )
            except Exception as exc:  # noqa: BLE001 - rung isolation
                attempts.append(
                    ReplanAttempt(
                        rung, "error", f"{type(exc).__name__}: {exc}"
                    )
                )
                continue
            if plan is None:
                attempts.append(
                    ReplanAttempt(rung, "timeout", "deadline expired")
                )
                continue
            score = scorer.score(plan)
            if score.is_valid:
                attempts.append(ReplanAttempt(rung, "ok"))
                return plan, score, rung
            attempts.append(
                ReplanAttempt(rung, "invalid", score.report.describe())
            )
            key = (score.is_valid, score.value, score.raw_value)
            if best_key is None or key > best_key:
                best_key = key
                best = (plan, score, rung)
        return best

    def _run_rung(
        self,
        rung: str,
        prefix: Tuple[Item, ...],
        live: Catalog,
        horizon: int,
        allowed,
        deadline: Deadline,
        scorer: PlanScorer,
    ) -> Optional[Plan]:
        service = self.service
        if rung == RUNG_SARSA:
            planner = service.planner
            if not planner.is_fitted or planner.qtable.update_count == 0:
                raise PlanningError("policy rung has no trained Q-table")
            if prefix:
                plan, _score, _ = planner.complete_plan(
                    prefix,
                    horizon=horizon,
                    should_stop=deadline.should_stop,
                    allowed_item_ids=allowed,
                    scorer=scorer,
                )
            else:
                plan, _score, _ = planner.recommend_anytime(
                    horizon=horizon,
                    should_stop=deadline.should_stop,
                    stop_when_valid=True,
                    allowed_item_ids=allowed,
                )
            return plan
        if rung == RUNG_EDA:
            grace = Deadline(
                max(deadline.remaining(), service.eda_grace_s),
                clock=service.clock,
            )
            eda = EDAPlanner(
                live, self._state.task, config=service.config,
                mode=service.mode, seed=service.config.seed,
            )
            if prefix:
                plan = eda.complete(
                    prefix, horizon=horizon, should_stop=grace.should_stop
                )
            else:
                plan = eda.recommend(
                    self._live_start(live), horizon=horizon,
                    should_stop=grace.should_stop,
                )
            if grace.expired and len(plan) < horizon:
                return None
            return plan
        from .repair import RepairPlanner

        repair = RepairPlanner(
            live, self._state.task, mode=service.mode,
            max_expansions=service.repair_max_expansions,
        )
        if prefix:
            return repair.recommend(pinned=prefix)
        return repair.recommend()

    @staticmethod
    def _live_start(live: Catalog) -> str:
        for item in live.primaries():
            if item.prerequisites.is_empty:
                return item.item_id
        return live.items[0].item_id

    def _finish(
        self,
        outcome: str,
        plan: Optional[Plan],
        score: Optional[PlanScore],
        rung: Optional[str],
        trigger: str,
        pending: Tuple[AppliedDelta, ...],
        deadline: Deadline,
        deadline_s: Optional[float],
        attempts: Tuple[ReplanAttempt, ...],
    ) -> ReplanResult:
        state = self._state
        if outcome in (REPLAN_OK, REPLAN_DEGRADED):
            assert plan is not None
            state.plan = plan
            state.unresolved.clear()
        elif outcome == REPLAN_NOOP:
            state.unresolved.clear()
        entry: Dict[str, object] = {
            "event": "replan",
            "seq": self._next_seq(),
            "trigger": trigger,
            "outcome": outcome,
            "suffix_start": state.executed,
        }
        if rung is not None:
            entry["rung"] = rung
        if plan is not None:
            entry["plan"] = list(plan.item_ids)
        state.log.append(entry)
        return ReplanResult(
            outcome=outcome,
            plan=plan,
            score=score,
            rung=rung,
            trigger=trigger,
            suffix_start=state.executed,
            deadline_s=(
                deadline_s if deadline_s is not None else deadline.seconds
            ),
            deadline_spent=deadline.elapsed(),
            deadline_exceeded=deadline.expired,
            attempts=attempts,
            deltas=pending,
            session_id=self.session_id,
        )

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def quiesce(
        self, grace_s: float = 0.0
    ) -> ReplanResult:
        """Finish-or-shed at server drain time.

        With a positive grace budget and pending deltas, runs one final
        bounded replan ("finish"); otherwise — or when that replan fails
        — sheds with a typed ``draining`` envelope.  Either way the
        session is marked drained and rejects further ingests.
        """
        with self._lock:
            state = self._state
            if state.drained:
                return self.last_result or self._shed_draining()
            result: Optional[ReplanResult] = None
            if state.unresolved and grace_s > 0:
                try:
                    result = self.replan(
                        deadline_s=grace_s, trigger="drain"
                    )
                except Exception:  # noqa: BLE001 - drain must not raise
                    result = None
                if result is not None and result.outcome in (
                    REPLAN_FAILED,
                ):
                    result = None
            if result is None:
                result = self._shed_draining()
            state.drained = True
            self.last_result = result
            return result

    def _shed_draining(self) -> ReplanResult:
        state = self._state
        pending = tuple(state.unresolved)
        state.log.append(
            {
                "event": "drained",
                "seq": self._next_seq(),
                "pending": len(pending),
            }
        )
        return ReplanResult(
            outcome=REPLAN_DRAINING,
            trigger=self._dominant_trigger(pending) if pending else "drain",
            suffix_start=state.executed,
            deltas=pending,
            session_id=self.session_id,
        )
