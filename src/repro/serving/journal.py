"""Write-ahead delta journal: crash durability for the serving state.

PR 8 made the world mutable — closed items, credit overrides, catalog
versions — but all of it lived in one process's memory.  A restart
silently resurrected closed items and served plans violating the
paper's availability constraints.  This module is the serving-side twin
of the runner's crash-safe checkpoints (PR 3): every
:class:`~repro.core.deltas.CatalogDelta` is appended to an append-only
JSONL journal and fsync'd *before* it is applied/acked, so the
journal's fold is always a superset of any state a client was ever told
about.

Record format (one JSON object per line)::

    {"schema": 1, "seq": 7, "delta": {...}, "checksum": "<sha256>"}

``checksum`` covers the canonical serialization of ``schema``/``seq``/
``delta``, so a flipped bit is distinguishable from a crash-torn tail.

Durability contract
-------------------
* **fsync-before-ack** — ``append`` returns only after the line is
  flushed and ``fdatasync``'d; a crash after the ack replays the delta.
* **at-least-once + idempotence** — a crash *between* fsync and apply
  means the journal holds a delta the in-memory view never folded; the
  replay applies it.  The facade dedupes by ``seq``, so a client retry
  of an acked delta is a no-op, never a double-apply.
* **torn-tail tolerance** — a kill mid-append leaves a truncated final
  line; :func:`~repro.runner.manifest.tolerant_stream_rows` drops it
  with a warning, as is a final line that parses as JSON but is
  *structurally incomplete* (missing record fields).  A structurally
  complete record whose checksum fails — final line or not — is real
  corruption (bit rot on bytes that were fully fsync'd and acked, not
  a crash artifact) and raises a typed
  :class:`~repro.core.exceptions.ArtifactError` so the caller can
  quarantine the journal instead of silently dropping an acked delta.
* **bounded replay** — ``write_snapshot`` persists the view's fold
  state atomically and truncates the journal, so replay cost is
  ``O(compact_every)`` regardless of uptime.  A crash between the
  snapshot rename and the truncation leaves the old tail on disk;
  replay skips that stale pre-watermark prefix (every record already
  folded into the snapshot) rather than treating it as corruption.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pathlib
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..core.deltas import Delta, delta_from_payload
from ..core.exceptions import ArtifactError, DeltaError
from ..obs import get_registry
from ..runner.manifest import PathLike, atomic_write_text, tolerant_stream_rows

logger = logging.getLogger(__name__)

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"
JOURNAL_SCHEMA = 1

#: fsync latency buckets: journaling sits on the apply_delta hot path,
#: so the interesting range is 100 µs (fast NVMe fdatasync) to the tens
#: of milliseconds a loaded spinning disk can take.
FSYNC_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.25,
)

# fdatasync skips flushing unchanged metadata (mtime) — measurably
# cheaper than fsync for line appends — but is POSIX-only.
_SYNC = getattr(os, "fdatasync", os.fsync)


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class _TornRecordError(ArtifactError):
    """A record that is structurally incomplete (missing fields).

    Internal marker: only this flavour of decode failure may be
    reclassified as a crash-torn tail when it hits the final line.  A
    structurally complete record that fails validation (checksum, seq,
    schema value) always stays an :class:`ArtifactError` — an acked,
    fsync'd record hit by bit rot must quarantine, never silently drop.
    """


def record_checksum(seq: int, delta_payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical (schema, seq, delta) triple."""
    body = _canonical(
        {"schema": JOURNAL_SCHEMA, "seq": seq, "delta": delta_payload}
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class SnapshotState:
    """The fold state a snapshot persists: everything
    :meth:`CatalogView.restore` needs, plus the journal watermark.

    ``seq`` is the highest journal sequence number folded into this
    state; replay applies only tail records with a larger ``seq``.
    """

    closed: Tuple[str, ...]
    credit_overrides: Dict[str, float]
    version: int
    seq: int

    def state_payload(self) -> Dict[str, object]:
        """The ``CatalogView.state_payload()``-shaped portion."""
        return {
            "closed": list(self.closed),
            "credit_overrides": dict(self.credit_overrides),
            "version": self.version,
        }

    def to_dict(self) -> Dict[str, object]:
        body = {
            "schema": JOURNAL_SCHEMA,
            "seq": self.seq,
            "state": self.state_payload(),
        }
        body["checksum"] = hashlib.sha256(
            _canonical(
                {k: body[k] for k in ("schema", "seq", "state")}
            ).encode("utf-8")
        ).hexdigest()
        return body

    @classmethod
    def from_dict(cls, payload: object, source: str) -> "SnapshotState":
        if not isinstance(payload, dict):
            raise ArtifactError(
                f"{source}: snapshot must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        if payload.get("schema") != JOURNAL_SCHEMA:
            raise ArtifactError(
                f"{source}: unsupported snapshot schema "
                f"{payload.get('schema')!r} (expected {JOURNAL_SCHEMA})"
            )
        expected = hashlib.sha256(
            _canonical(
                {
                    k: payload.get(k)
                    for k in ("schema", "seq", "state")
                }
            ).encode("utf-8")
        ).hexdigest()
        if payload.get("checksum") != expected:
            raise ArtifactError(
                f"{source}: snapshot checksum mismatch "
                f"(stored {str(payload.get('checksum'))[:12]}..., "
                f"computed {expected[:12]}...)"
            )
        state = payload.get("state")
        seq = payload.get("seq")
        if not isinstance(state, dict) or not isinstance(seq, int):
            raise ArtifactError(f"{source}: malformed snapshot body")
        closed = state.get("closed")
        overrides = state.get("credit_overrides")
        version = state.get("version")
        if (
            not isinstance(closed, list)
            or not isinstance(overrides, dict)
            or not isinstance(version, int)
        ):
            raise ArtifactError(f"{source}: malformed snapshot state")
        return cls(
            closed=tuple(closed),
            credit_overrides={
                item: float(credits)
                for item, credits in overrides.items()
            },
            version=version,
            seq=seq,
        )


@dataclasses.dataclass(frozen=True)
class ReplayResult:
    """What :meth:`DeltaJournal.replay` recovered.

    ``last_seq`` is the high-water mark the facade resumes dedupe from:
    the tail's final record, or the snapshot's watermark when the tail
    is empty, or 0 for a pristine journal.  ``stale_records`` counts
    pre-watermark tail records skipped because a crash landed between
    the snapshot rename and the journal truncation.
    """

    snapshot: Optional[SnapshotState]
    deltas: Tuple[Delta, ...]
    last_seq: int
    torn_tail: bool = False
    stale_records: int = 0

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.deltas


class DeltaJournal:
    """Append-only, checksummed, fsync'd delta journal with snapshots.

    Parameters
    ----------
    root:
        Directory holding ``journal.jsonl`` + ``snapshot.json``
        (created if missing).
    compact_every:
        Tail length at which :meth:`should_compact` turns true; the
        facade then snapshots the view and truncates the journal.
    fsync:
        ``False`` skips the per-append ``fdatasync`` (tests/benchmarks
        that want the format without the durability tax).

    Thread-safe: appends and snapshots serialize under an internal
    lock.  The facade additionally holds its delta lock around the
    journal+apply pair, so the journal order always matches the fold
    order.
    """

    def __init__(
        self,
        root: PathLike,
        compact_every: int = 512,
        fsync: bool = True,
    ) -> None:
        if compact_every < 1:
            raise ValueError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compact_every = compact_every
        self.fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        self._tail_records = 0
        self._closed = False

    @property
    def journal_path(self) -> pathlib.Path:
        return self.root / JOURNAL_NAME

    @property
    def snapshot_path(self) -> pathlib.Path:
        return self.root / SNAPSHOT_NAME

    @property
    def tail_records(self) -> int:
        """Records appended since the last snapshot (this process +
        whatever :meth:`replay` counted)."""
        return self._tail_records

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _writer(self):
        if self._closed:
            raise ArtifactError(
                f"journal {self.root} is closed; appends refused"
            )
        if self._handle is None:
            self._handle = self.journal_path.open("a")
        return self._handle

    def append(self, delta: Delta) -> None:
        """Durably append one seq-stamped delta (fsync-before-return).

        The caller (the facade) stamps ``seq`` before appending;
        unstamped deltas are refused because replay dedupe would be
        meaningless without a watermark.
        """
        if delta.seq <= 0:
            raise DeltaError(
                f"journal appends require a positive seq, got {delta.seq}"
            )
        payload = delta.to_dict()
        line = _canonical(
            {
                "schema": JOURNAL_SCHEMA,
                "seq": delta.seq,
                "delta": payload,
                "checksum": record_checksum(delta.seq, payload),
            }
        )
        obs = get_registry()
        with self._lock:
            handle = self._writer()
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                t0 = time.perf_counter()
                _SYNC(handle.fileno())
                obs.histogram(
                    "journal_fsync_seconds", FSYNC_BUCKETS
                ).observe(time.perf_counter() - t0)
            self._tail_records += 1
        obs.inc("journal_appends_total")

    def should_compact(self) -> bool:
        """True when the tail has outgrown ``compact_every``."""
        return self._tail_records >= self.compact_every

    def write_snapshot(
        self, state: Dict[str, object], seq: int
    ) -> pathlib.Path:
        """Atomically persist the fold state and truncate the journal.

        ``state`` is a :meth:`CatalogView.state_payload` dict; ``seq``
        is the watermark of the last journaled delta folded into it.
        Ordering is crash-safe: the snapshot lands via tmp+fsync+rename
        *before* the journal is truncated, so a crash between the two
        merely replays tail deltas already covered by the snapshot —
        harmless, because replay skips records at/below the watermark.
        """
        snapshot = SnapshotState(
            closed=tuple(state.get("closed", ())),
            credit_overrides=dict(state.get("credit_overrides", {})),
            version=int(state.get("version", 0)),
            seq=seq,
        )
        with self._lock:
            path = atomic_write_text(
                self.snapshot_path,
                _canonical(snapshot.to_dict()) + "\n",
            )
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            # Truncate-in-place (not unlink) keeps the inode any
            # concurrent reader already has open coherent.
            with self.journal_path.open("w") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            self._tail_records = 0
        get_registry().inc("journal_snapshots_total")
        return path

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._closed = True

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Read snapshot + journal tail back into typed deltas.

        Raises :class:`ArtifactError` on real corruption (bad snapshot
        checksum, any structurally complete record whose checksum
        fails, seq regressions within the post-watermark tail) — the
        caller should :meth:`quarantine` and fall back to the pristine
        catalog.  A torn final line (crash mid-append: truncated JSON
        or a parsed object missing record fields) is dropped with a
        warning: by the fsync-before-ack contract no client was ever
        acked for it.  Tail records at or below the snapshot watermark
        that precede any post-watermark record are the stale remainder
        of a crash between snapshot and truncation — already folded
        into the snapshot, so they are skipped, not errors.
        """
        snapshot: Optional[SnapshotState] = None
        if self.snapshot_path.exists():
            try:
                payload = json.loads(self.snapshot_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ArtifactError(
                    f"{self.snapshot_path}: unreadable snapshot: {exc}"
                ) from exc
            snapshot = SnapshotState.from_dict(
                payload, str(self.snapshot_path)
            )
        last_seq = snapshot.seq if snapshot is not None else 0

        total_lines = 0
        if self.journal_path.exists():
            with self.journal_path.open() as handle:
                total_lines = sum(1 for _ in handle)
        rows = tolerant_stream_rows(self.journal_path)
        if total_lines - len(rows) > 1:
            # tolerant_stream_rows stops at the first undecodable line;
            # more than one dropped line means the failure was not the
            # crash-torn tail but mid-stream corruption.
            raise ArtifactError(
                f"{self.journal_path}: undecodable record at line "
                f"{len(rows) + 1} of {total_lines} (mid-stream "
                f"corruption, not a torn tail)"
            )
        torn_tail = total_lines - len(rows) == 1

        snapshot_seq = last_seq
        deltas: List[Delta] = []
        stale = 0
        for index, row in enumerate(rows):
            is_last = index == len(rows) - 1
            try:
                delta = self._decode_record(row, index + 1)
            except _TornRecordError:
                if is_last and not torn_tail:
                    # A final line that parses as JSON but is missing
                    # record fields is still the torn tail of a crash
                    # mid-append.  (A *complete* record failing its
                    # checksum propagates: that is bit rot on acked
                    # bytes, and dropping it would lose a durable
                    # delta — quarantine instead.)
                    logger.warning(
                        "%s: dropping torn final record at line %d",
                        self.journal_path, index + 1,
                    )
                    torn_tail = True
                    break
                raise
            if delta.seq <= snapshot_seq and not deltas:
                # Stale pre-watermark prefix: a crash between
                # write_snapshot's atomic rename and the journal
                # truncation left the old tail on disk.  Every one of
                # these records is already folded into the snapshot.
                stale += 1
                continue
            if delta.seq <= last_seq:
                raise ArtifactError(
                    f"{self.journal_path}: seq regression at line "
                    f"{index + 1}: {delta.seq} <= watermark {last_seq}"
                )
            last_seq = delta.seq
            deltas.append(delta)
        if stale:
            logger.warning(
                "%s: skipped %d stale pre-watermark record(s) <= seq %d "
                "(crash between snapshot and truncation; already folded "
                "into the snapshot)",
                self.journal_path, stale, snapshot_seq,
            )
            get_registry().inc("journal_replay_stale_records_total", stale)

        with self._lock:
            self._tail_records = len(deltas)
        return ReplayResult(
            snapshot=snapshot,
            deltas=tuple(deltas),
            last_seq=last_seq,
            torn_tail=torn_tail,
            stale_records=stale,
        )

    def _decode_record(self, row: Dict[str, object], lineno: int) -> Delta:
        source = f"{self.journal_path}:{lineno}"
        if not isinstance(row, dict):
            raise _TornRecordError(
                f"{source}: record must be a JSON object"
            )
        missing = [
            key
            for key in ("schema", "seq", "delta", "checksum")
            if key not in row
        ]
        if missing:
            raise _TornRecordError(
                f"{source}: record missing field(s) {missing} "
                f"(structurally incomplete)"
            )
        if row.get("schema") != JOURNAL_SCHEMA:
            raise ArtifactError(
                f"{source}: unsupported record schema "
                f"{row.get('schema')!r} (expected {JOURNAL_SCHEMA})"
            )
        seq = row.get("seq")
        payload = row.get("delta")
        if not isinstance(seq, int) or not isinstance(payload, dict):
            raise ArtifactError(f"{source}: malformed record body")
        if row.get("checksum") != record_checksum(seq, payload):
            raise ArtifactError(
                f"{source}: record checksum mismatch (bit rot or "
                f"tampering; refusing to replay)"
            )
        try:
            delta = delta_from_payload(payload)
        except DeltaError as exc:
            raise ArtifactError(
                f"{source}: checksummed record decodes to an invalid "
                f"delta: {exc}"
            ) from exc
        if delta.seq != seq:
            raise ArtifactError(
                f"{source}: record seq {seq} disagrees with delta seq "
                f"{delta.seq}"
            )
        return delta

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------

    def quarantine(self) -> Tuple[pathlib.Path, ...]:
        """Move the corrupt journal + snapshot aside and start fresh.

        Files are renamed with an incrementing ``.quarantined-N``
        suffix (no wall-clock in names — deterministic test artifacts),
        preserved for the forensics the ops runbook in EXPERIMENTS.md
        walks through.  Returns the quarantined paths.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            victims = [
                path
                for path in (self.journal_path, self.snapshot_path)
                if path.exists()
            ]
            moved: List[pathlib.Path] = []
            if victims:
                index = 0
                while True:
                    targets = [
                        path.with_name(
                            f"{path.name}.quarantined-{index}"
                        )
                        for path in victims
                    ]
                    if not any(t.exists() for t in targets):
                        break
                    index += 1
                for path, target in zip(victims, targets):
                    path.rename(target)
                    moved.append(target)
            self._tail_records = 0
        get_registry().inc("journal_quarantines_total")
        for target in moved:
            logger.warning("journal quarantined: %s", target)
        return tuple(moved)

    def __enter__(self) -> "DeltaJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
