"""Accumulation of feedback signals into per-item preferences.

The store keeps an exponentially-smoothed preference per item: recent
feedback dominates (a user's taste drifts across planning rounds) while
history still counts.  Preferences live in [-1, 1] like the raw
signals.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .models import Feedback, FeedbackError


class FeedbackStore:
    """Per-item preference state built from feedback signals.

    Parameters
    ----------
    smoothing:
        Exponential-smoothing factor in (0, 1]: the weight of the *new*
        signal (1.0 = only the latest signal counts).
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise FeedbackError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.smoothing = smoothing
        self._preferences: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._log: List[Feedback] = []

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, feedback: Feedback) -> float:
        """Fold one signal in; returns the item's new preference."""
        old = self._preferences.get(feedback.item_id)
        if old is None:
            new = feedback.utility
        else:
            new = (
                self.smoothing * feedback.utility
                + (1.0 - self.smoothing) * old
            )
        self._preferences[feedback.item_id] = new
        self._counts[feedback.item_id] = (
            self._counts.get(feedback.item_id, 0) + 1
        )
        self._log.append(feedback)
        return new

    def add_all(self, signals: Iterable[Feedback]) -> None:
        """Fold in a batch of signals, in order."""
        for feedback in signals:
            self.add(feedback)

    def reset(self) -> None:
        """Forget everything."""
        self._preferences.clear()
        self._counts.clear()
        self._log.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def preference(self, item_id: str) -> float:
        """The item's current preference (0.0 when never rated)."""
        return self._preferences.get(item_id, 0.0)

    def count(self, item_id: str) -> int:
        """How many signals the item has received."""
        return self._counts.get(item_id, 0)

    def rated_items(self) -> Tuple[str, ...]:
        """Ids of all items with at least one signal."""
        return tuple(sorted(self._preferences))

    def rejected_items(self, threshold: float = -0.5) -> Tuple[str, ...]:
        """Items whose preference fell to/below ``threshold``."""
        return tuple(
            sorted(
                item_id
                for item_id, pref in self._preferences.items()
                if pref <= threshold
            )
        )

    def endorsed_items(self, threshold: float = 0.5) -> Tuple[str, ...]:
        """Items whose preference rose to/above ``threshold``."""
        return tuple(
            sorted(
                item_id
                for item_id, pref in self._preferences.items()
                if pref >= threshold
            )
        )

    def history(self) -> Tuple[Feedback, ...]:
        """Every signal received, in arrival order."""
        return tuple(self._log)

    def __len__(self) -> int:
        return len(self._preferences)
