"""Feedback-adjusted reward: folding preferences into Equation 2.

The adapter wraps a base :class:`~repro.core.reward.RewardFunction` and
adds a preference term to gated-in actions:

    R'(s, e, s') = theta * [ delta*Sim + beta*weight
                             + phi * preference(item) ]

where ``phi`` is the feedback weight and ``preference`` comes from the
:class:`~repro.feedback.store.FeedbackStore`.  The theta gate is
untouched — feedback can re-rank valid actions but never launder an
invalid one — and strongly rejected items are additionally masked out
of the action set, mirroring how an advisor simply stops suggesting a
course the student refused.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.items import Item
from ..core.plan import PlanBuilder
from ..core.reward import RewardBreakdown, RewardFunction
from .store import FeedbackStore


class FeedbackAdjustedReward:
    """RewardFunction-compatible wrapper adding a preference term.

    Parameters
    ----------
    base:
        The Equation-2 reward being wrapped.
    store:
        Live feedback store (shared with the session driving it).
    feedback_weight:
        ``phi`` — how strongly preference shifts the reward.
    reject_threshold:
        Items at/below this preference are masked from the action set
        entirely (None disables hard rejection).
    """

    def __init__(
        self,
        base: RewardFunction,
        store: FeedbackStore,
        feedback_weight: float = 0.3,
        reject_threshold: Optional[float] = -0.5,
    ) -> None:
        self.base = base
        self.store = store
        self.feedback_weight = feedback_weight
        self.reject_threshold = reject_threshold

    # ------------------------------------------------------------------
    # RewardFunction interface (delegated gates, adjusted total)
    # ------------------------------------------------------------------

    @property
    def task(self):
        """The wrapped task (RewardFunction interface)."""
        return self.base.task

    @property
    def config(self):
        """The wrapped config (RewardFunction interface)."""
        return self.base.config

    def coverage_gate(self, builder: PlanBuilder, item: Item) -> int:
        """Delegates r1 to the base reward."""
        return self.base.coverage_gate(builder, item)

    def gap_gate(self, builder: PlanBuilder, item: Item) -> int:
        """Delegates r2 to the base reward."""
        return self.base.gap_gate(builder, item)

    def feasibility_gate(self, builder: PlanBuilder, item: Item) -> bool:
        """Delegates the lookahead feasibility mask."""
        return self.base.feasibility_gate(builder, item)

    def type_weight(self, item: Item) -> float:
        """Delegates the type/category weight."""
        return self.base.type_weight(item)

    def best_possible(self) -> float:
        """Single-step bound including the maximal preference bonus."""
        return self.base.best_possible() + self.feedback_weight

    def breakdown(self, builder: PlanBuilder, item: Item) -> RewardBreakdown:
        """Base breakdown with the preference term folded into total."""
        base = self.base.breakdown(builder, item)
        if base.theta == 0:
            return base
        bonus = self.feedback_weight * self.store.preference(item.item_id)
        return RewardBreakdown(
            r1_coverage=base.r1_coverage,
            r2_gap=base.r2_gap,
            similarity=base.similarity,
            type_weight=base.type_weight,
            total=max(0.0, base.total + bonus),
        )

    def __call__(self, builder: PlanBuilder, item: Item) -> float:
        """Adjusted Equation-2 value."""
        return self.breakdown(builder, item).total

    def reward_batch(
        self, builder: PlanBuilder, candidates: Sequence[Item]
    ) -> np.ndarray:
        """Vectorized adjusted rewards (batched base + preference term).

        Matches the per-item :meth:`__call__` exactly: the preference
        bonus applies only to theta-gated-in actions and the adjusted
        total is clamped at zero.
        """
        candidates = tuple(candidates)
        theta, _sims, _weights, totals = self.base.batch_components(
            builder, candidates
        )
        if not candidates:
            return totals
        preference = self.store.preference
        prefs = np.fromiter(
            (preference(item.item_id) for item in candidates),
            dtype=np.float64,
            count=len(candidates),
        )
        adjusted = np.maximum(0.0, totals + self.feedback_weight * prefs)
        return np.where(theta, adjusted, totals)

    def mask_actions(self, builder: PlanBuilder, candidates) -> tuple:
        """Base tiered masking plus hard rejection of refused items."""
        if self.reject_threshold is not None:
            filtered: Tuple[Item, ...] = tuple(
                item
                for item in candidates
                if self.store.preference(item.item_id)
                > self.reject_threshold
            )
            if filtered:
                candidates = filtered
        return self.base.mask_actions(builder, candidates)
