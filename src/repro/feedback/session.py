"""The interactive plan/feedback/replan loop of Section VI.

"This will allow us to create a loop that accounts for effectiveness
and incorporate that in future design choices."  The session owns the
loop: it trains a feedback-aware planner, proposes a plan, folds the
user's feedback into the store, and retrains (warm-started) so the next
proposal reflects the updated preferences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.catalog import Catalog
from ..core.config import PlannerConfig
from ..core.constraints import TaskSpec
from ..core.env import DomainMode, TPPEnvironment
from ..core.plan import Plan
from ..core.policy import GreedyPolicy
from ..core.qtable import QTableBase
from ..core.sarsa import SarsaLearner
from ..core.scoring import PlanScore, PlanScorer
from .adapter import FeedbackAdjustedReward
from .models import Feedback
from .store import FeedbackStore


@dataclass(frozen=True)
class PlanningRound:
    """One iteration of the loop: the plan proposed and its score."""

    round_index: int
    plan: Plan
    score: PlanScore
    feedback_items: Tuple[str, ...] = ()


class InteractiveSession:
    """Stateful plan -> feedback -> replan loop.

    Parameters
    ----------
    catalog / task / config / mode:
        The TPP instance, as for :class:`~repro.core.planner.RLPlanner`.
    feedback_weight / reject_threshold / smoothing:
        Tuning of the feedback pathway (see
        :class:`~repro.feedback.adapter.FeedbackAdjustedReward` and
        :class:`~repro.feedback.store.FeedbackStore`).
    replan_episodes:
        Warm-start training budget per replan round (fresh training uses
        ``config.episodes``).
    """

    def __init__(
        self,
        catalog: Catalog,
        task: TaskSpec,
        config: Optional[PlannerConfig] = None,
        mode: DomainMode = DomainMode.COURSE,
        feedback_weight: float = 0.3,
        reject_threshold: Optional[float] = -0.5,
        smoothing: float = 0.5,
        replan_episodes: int = 100,
    ) -> None:
        self.catalog = catalog
        self.task = task
        self.config = config if config is not None else PlannerConfig()
        self.mode = mode
        self.replan_episodes = replan_episodes
        self.store = FeedbackStore(smoothing=smoothing)
        self.scorer = PlanScorer(task, mode=mode)
        base_env = TPPEnvironment(catalog, task, self.config, mode=mode)
        self.reward = FeedbackAdjustedReward(
            base_env.reward,
            self.store,
            feedback_weight=feedback_weight,
            reject_threshold=reject_threshold,
        )
        self.env = TPPEnvironment(
            catalog, task, self.config, mode=mode, reward=self.reward
        )
        self._qtable: Optional[QTableBase] = None
        self._rounds: List[PlanningRound] = []

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def propose(self, start_item_id: str) -> PlanningRound:
        """Train (or warm-retrain) and propose the next plan."""
        learner = SarsaLearner(self.env, self.config)
        episodes = (
            self.config.episodes
            if self._qtable is None
            else self.replan_episodes
        )
        result = learner.learn(
            start_item_ids=[start_item_id],
            episodes=episodes,
            qtable=self._qtable,
        )
        self._qtable = result.qtable

        policy = GreedyPolicy(
            self._qtable,
            self.task,
            mode=self.mode,
            rng_seed=self.config.seed,
            reward=self.reward,
            discount=self._lookahead_weight(),
        )
        plan = policy.recommend(start_item_id)
        score = self.scorer.score(plan)
        round_ = PlanningRound(
            round_index=len(self._rounds),
            plan=plan,
            score=score,
        )
        self._rounds.append(round_)
        return round_

    def give_feedback(self, signals: Iterable[Feedback]) -> None:
        """Fold user feedback into the store (affects future rounds)."""
        signals = tuple(signals)
        self.store.add_all(signals)
        if self._rounds:
            last = self._rounds[-1]
            self._rounds[-1] = PlanningRound(
                round_index=last.round_index,
                plan=last.plan,
                score=last.score,
                feedback_items=last.feedback_items
                + tuple(s.item_id for s in signals),
            )

    def _lookahead_weight(self) -> float:
        if self.config.lookahead_weight is not None:
            return self.config.lookahead_weight
        return self.config.discount

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def rounds(self) -> Tuple[PlanningRound, ...]:
        """All planning rounds so far."""
        return tuple(self._rounds)

    def last_plan(self) -> Optional[Plan]:
        """The most recently proposed plan (None before any round)."""
        return self._rounds[-1].plan if self._rounds else None

    def preference_summary(self) -> str:
        """One-line rendering of the current preferences."""
        parts = [
            f"{item_id}:{self.store.preference(item_id):+.2f}"
            for item_id in self.store.rated_items()
        ]
        return ", ".join(parts) if parts else "(no feedback yet)"
