"""Feedback signals for adaptive task planning (Section VI).

The paper's conclusion sketches the feedback loop this package
implements: "Feedback could come as binary values (useful item / not
useful), categorical rating (e.g., on a scale of 1-5), or as a
probability distribution."  All three forms are normalized to a single
*utility* in [-1, 1] so downstream components (store, reward adapter)
are agnostic to how the user expressed themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..core.exceptions import ReproError


class FeedbackError(ReproError):
    """A feedback signal was malformed (rating off-scale, bad weights)."""


@dataclass(frozen=True)
class Feedback:
    """One normalized feedback signal about one item.

    ``utility`` is in [-1, 1]: -1 = strongly reject, 0 = indifferent,
    +1 = strongly endorse.  Use the class methods to build instances
    from the paper's three raw forms.
    """

    item_id: str
    utility: float
    kind: str = "utility"

    def __post_init__(self) -> None:
        if not self.item_id:
            raise FeedbackError("feedback needs a target item id")
        if not -1.0 <= self.utility <= 1.0:
            raise FeedbackError(
                f"utility must be in [-1, 1], got {self.utility}"
            )

    # ------------------------------------------------------------------
    # The paper's three feedback forms
    # ------------------------------------------------------------------

    @classmethod
    def binary(cls, item_id: str, useful: bool) -> "Feedback":
        """Binary feedback: useful item (+1) / not useful (-1)."""
        return cls(
            item_id=item_id,
            utility=1.0 if useful else -1.0,
            kind="binary",
        )

    @classmethod
    def rating(cls, item_id: str, stars: float) -> "Feedback":
        """Categorical 1-5 rating mapped linearly onto [-1, 1]."""
        if not 1.0 <= stars <= 5.0:
            raise FeedbackError(
                f"rating must be on the 1-5 scale, got {stars}"
            )
        return cls(
            item_id=item_id,
            utility=(stars - 3.0) / 2.0,
            kind="rating",
        )

    @classmethod
    def distribution(
        cls,
        item_id: str,
        probabilities: Mapping[float, float],
    ) -> "Feedback":
        """A probability distribution over utility levels.

        ``probabilities`` maps utility values in [-1, 1] to their
        probability mass; the feedback utility is the expectation.
        Example: ``{-1.0: 0.2, 0.0: 0.3, 1.0: 0.5}`` -> utility 0.3.
        """
        if not probabilities:
            raise FeedbackError("empty probability distribution")
        total = sum(probabilities.values())
        if abs(total - 1.0) > 1e-6:
            raise FeedbackError(
                f"probabilities must sum to 1, got {total:g}"
            )
        expectation = 0.0
        for level, mass in probabilities.items():
            if not -1.0 <= level <= 1.0:
                raise FeedbackError(
                    f"utility level {level} outside [-1, 1]"
                )
            if mass < 0:
                raise FeedbackError("negative probability mass")
            expectation += level * mass
        return cls(
            item_id=item_id,
            utility=expectation,
            kind="distribution",
        )


def feedback_batch(
    ratings: Mapping[str, float]
) -> Tuple[Feedback, ...]:
    """Convenience: many 1-5 ratings at once (item id -> stars)."""
    return tuple(
        Feedback.rating(item_id, stars)
        for item_id, stars in sorted(ratings.items())
    )
