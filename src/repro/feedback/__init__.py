"""Adaptive feedback loop (the paper's Section VI future work).

Feedback arrives as binary useful/not-useful flags, 1-5 ratings, or
probability distributions; all are normalized to utilities, folded into
per-item preferences, and injected into the Equation-2 reward so that
replanning reflects what the user said about earlier proposals.
"""

from .adapter import FeedbackAdjustedReward
from .models import Feedback, FeedbackError, feedback_batch
from .session import InteractiveSession, PlanningRound
from .store import FeedbackStore

__all__ = [
    "Feedback",
    "FeedbackAdjustedReward",
    "FeedbackError",
    "FeedbackStore",
    "InteractiveSession",
    "PlanningRound",
    "feedback_batch",
]
