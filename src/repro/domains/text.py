"""Topic extraction from item names and descriptions.

The paper forms topic vectors by extracting nouns from course names
(after stop-word removal) and themes from POI descriptions.  Without a
POS tagger available offline we approximate "noun extraction" the way
the paper's artifact effectively does for course titles: lower-case
tokenization, stop-word and connective removal, and light suffix-based
filtering of obvious verbs/adverbs.  Course titles are overwhelmingly
noun phrases ("Data Structures and Algorithms"), so this matches the
paper's behaviour on its actual inputs.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Sequence, Tuple

# Standard English stop words plus catalog-specific connectives that
# appear in course titles ("introduction to", "topics in", ...).
STOPWORDS: FrozenSet[str] = frozenset(
    """
    a an and are as at be but by for from has have i ii iii in into is it
    its of on or s that the their this to was were will with without
    introduction intro advanced intermediate elementary principles
    foundations fundamentals topics special seminar independent study
    selected readings practicum capstone course courses
    """.split()
)

_TOKEN_RE = re.compile(r"[a-z][a-z0-9+\-]*")

# Suffixes that almost always mark non-noun tokens in catalog titles.
_VERBISH_SUFFIXES: Tuple[str, ...] = ("ly",)


def tokenize(text: str) -> List[str]:
    """Lower-case word tokens of ``text`` (letters, digits, '+', '-')."""
    return _TOKEN_RE.findall(text.lower())


def _looks_like_noun(token: str) -> bool:
    """Heuristic noun filter for catalog-title tokens."""
    if len(token) < 2:
        return False
    return not any(token.endswith(suffix) for suffix in _VERBISH_SUFFIXES)


def extract_topics(
    text: str, extra_stopwords: Iterable[str] = ()
) -> FrozenSet[str]:
    """Topic keywords of an item name/description.

    Mirrors the paper's "extract nouns from course names and remove
    stopwords" step.  Returns a frozenset so it can seed
    :attr:`repro.core.items.Item.topics` directly.
    """
    stop = STOPWORDS | frozenset(w.lower() for w in extra_stopwords)
    return frozenset(
        token
        for token in tokenize(text)
        if token not in stop and _looks_like_noun(token)
    )


def vocabulary_of(texts: Sequence[str]) -> Tuple[str, ...]:
    """Sorted distinct topics extracted from many names (the set ``T``)."""
    vocab: set = set()
    for text in texts:
        vocab |= extract_topics(text)
    return tuple(sorted(vocab))
