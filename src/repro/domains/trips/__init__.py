"""Trip-planning instantiation of TPP (Section II-B-2)."""

from .generator import (
    CITIES,
    CitySpec,
    NYC,
    PARIS,
    TRIP_TEMPLATE_LABELS,
    TripDataset,
    build_trip_task,
    generate_city,
    load_city,
)
from .gold import GoldItineraryOracle, gold_trip_plan
from .routing import optimize_route, route_summary
from .themes import NYC_THEMES, PARIS_THEMES, theme_bank

__all__ = [
    "CITIES",
    "CitySpec",
    "GoldItineraryOracle",
    "NYC",
    "NYC_THEMES",
    "PARIS",
    "PARIS_THEMES",
    "TRIP_TEMPLATE_LABELS",
    "TripDataset",
    "build_trip_task",
    "generate_city",
    "gold_trip_plan",
    "load_city",
    "optimize_route",
    "route_summary",
    "theme_bank",
]
