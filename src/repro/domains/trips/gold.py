"""Gold-standard itinerary oracle.

The paper's trip gold standards are handcrafted by travel agents.  Like
the course oracle, we replace the expert with exhaustive search: a DFS
over the trip template's slots that honours the time budget, the total
travel-distance threshold, POI antecedents, and the no-consecutive-
same-theme rule, preferring popular POIs in each slot (which is exactly
what an agent's "must-see first" instinct produces).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...core.catalog import Catalog
from ...core.constraints import TaskSpec
from ...core.exceptions import PlanningError
from ...core.items import Item, ItemType
from ...core.plan import Plan
from ...core.validation import PlanValidator, haversine_km


class GoldItineraryOracle:
    """Search for a template-perfect, constraint-satisfying itinerary."""

    def __init__(
        self, catalog: Catalog, task: TaskSpec, max_expansions: int = 300_000
    ) -> None:
        self.catalog = catalog
        self.task = task
        self.max_expansions = max_expansions
        self._validator = PlanValidator(task.hard, credits_are_budget=True)

    def find(self, start_item_id: Optional[str] = None) -> Plan:
        """Return a gold itinerary, optionally pinned to a start POI."""
        for permutation in self.task.soft.template:
            plan = self._search(permutation, start_item_id)
            if plan is not None:
                return plan
        raise PlanningError(
            f"no gold itinerary exists for {self.task.name!r}"
        )

    def _search(
        self,
        permutation: Sequence[ItemType],
        start_item_id: Optional[str],
    ) -> Optional[Plan]:
        self._expansions = 0
        chosen: List[Item] = []
        positions: Dict[str, int] = {}
        if self._dfs(permutation, 0, chosen, positions, 0.0, 0.0,
                     start_item_id):
            plan = Plan(items=tuple(chosen), catalog_name=self.catalog.name)
            if self._validator.is_valid(plan):
                return plan
        return None

    def _dfs(
        self,
        permutation: Sequence[ItemType],
        slot: int,
        chosen: List[Item],
        positions: Dict[str, int],
        time_used: float,
        distance_used: float,
        start_item_id: Optional[str],
    ) -> bool:
        if slot == len(permutation):
            return True
        if self._expansions >= self.max_expansions:
            return False
        for item, leg in self._candidates(
            permutation[slot], slot, chosen, positions, time_used,
            distance_used, start_item_id,
        ):
            self._expansions += 1
            chosen.append(item)
            positions[item.item_id] = slot
            if self._dfs(
                permutation,
                slot + 1,
                chosen,
                positions,
                time_used + item.credits,
                distance_used + leg,
                start_item_id,
            ):
                return True
            chosen.pop()
            del positions[item.item_id]
        return False

    def _candidates(
        self,
        required_type: ItemType,
        slot: int,
        chosen: List[Item],
        positions: Dict[str, int],
        time_used: float,
        distance_used: float,
        start_item_id: Optional[str],
    ) -> List[Tuple[Item, float]]:
        """Eligible POIs for a slot, most popular first."""
        hard = self.task.hard
        budget_left = hard.min_credits - time_used
        last = chosen[-1] if chosen else None
        pool: Sequence[Item]
        if slot == 0 and start_item_id is not None:
            pool = (self.catalog[start_item_id],)
        else:
            pool = self.catalog.items

        scored: List[Tuple[float, str, Item, float]] = []
        for item in pool:
            if item.item_id in positions:
                continue
            if item.item_type is not required_type:
                continue
            if item.credits > budget_left + 1e-9:
                continue
            if last is not None and (last.topics & item.topics):
                continue  # theme-adjacency gap
            if not item.prerequisites.satisfied_by(
                positions, slot, hard.gap
            ):
                continue
            leg = 0.0
            if last is not None:
                leg = haversine_km(
                    float(last.meta("lat")), float(last.meta("lon")),
                    float(item.meta("lat")), float(item.meta("lon")),
                )
                if (
                    hard.max_distance is not None
                    and distance_used + leg > hard.max_distance + 1e-9
                ):
                    continue
            popularity = float(item.meta("popularity") or 0.0)
            scored.append((-popularity, item.item_id, item, leg))
        scored.sort()
        return [(item, leg) for _, _, item, leg in scored]


def gold_trip_plan(
    catalog: Catalog, task: TaskSpec, start_item_id: Optional[str] = None
) -> Plan:
    """Convenience wrapper around :class:`GoldItineraryOracle`."""
    return GoldItineraryOracle(catalog, task).find(start_item_id)
