"""Synthetic Flickr-like trip datasets for NYC and Paris.

The paper mines Flickr photo streams (POI-tagged photos whose timestamps
define same-day itineraries) and Google Places themes: NYC has 90 POIs,
21 themes, and 2908 historical itineraries; Paris has 114 POIs, 16
themes, and 5494 itineraries.  Those exact statistics are reproduced by
a seeded generator: POIs get themes, compact geographic coordinates,
visit durations, and 1-5 popularity; historical itineraries are sampled
with popularity- and proximity-biased walks (they feed the OMEGA
baseline's co-visit statistics, exactly the signal the real Flickr data
provides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...core.catalog import Catalog
from ...core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)
from ...core.exceptions import DatasetError
from ...core.items import Item, ItemType, Prerequisites, make_metadata
from ...core.validation import haversine_km
from .themes import compose_poi_name, theme_bank

# The paper's Section II-B-2 trip template (5 slots: 2 primary, 3
# secondary).
TRIP_TEMPLATE_LABELS: Tuple[Tuple[str, ...], ...] = (
    ("P", "S", "P", "S", "S"),
    ("P", "S", "S", "S", "P"),
    ("P", "S", "S", "P", "S"),
)


@dataclass(frozen=True)
class CitySpec:
    """Statistics of one city dataset (matching Section IV-A-1)."""

    name: str
    num_pois: int
    num_itineraries: int
    center: Tuple[float, float]
    num_primary_pois: int = 8
    time_budget: float = 6.0
    distance_threshold: float = 5.0
    num_primary: int = 2
    num_secondary: int = 3
    gap: int = 1

    @property
    def themes(self) -> Tuple[str, ...]:
        """The city's theme vocabulary (21 for NYC, 16 for Paris)."""
        return theme_bank(self.name)


NYC = CitySpec(
    name="nyc",
    num_pois=90,
    num_itineraries=2908,
    center=(40.7549, -73.9840),
)

PARIS = CitySpec(
    name="paris",
    num_pois=114,
    num_itineraries=5494,
    center=(48.8566, 2.3522),
)

CITIES: Dict[str, CitySpec] = {"nyc": NYC, "paris": PARIS}

# Visit-duration ranges (hours) by primary theme; everything else falls
# under the default.
_DURATIONS: Dict[str, Tuple[float, float]] = {
    "museum": (1.2, 2.0),
    "gallery": (1.0, 1.8),
    "palace": (1.2, 2.0),
    "zoo": (1.5, 2.0),
    "aquarium": (1.2, 1.8),
    "restaurant": (0.8, 1.2),
    "cafe": (0.5, 0.9),
}
_DEFAULT_DURATION: Tuple[float, float] = (0.4, 1.2)

# Themes whose POIs demand a relaxing antecedent pattern: restaurants and
# cafes require some museum/gallery earlier (the paper's "visit a museum
# before a restaurant/cafe" antecedent).
_NEEDS_CULTURE_FIRST: Tuple[str, ...] = ("restaurant", "cafe")
_CULTURE_THEMES: Tuple[str, ...] = ("museum", "gallery")


@dataclass(frozen=True)
class TripDataset:
    """A fully assembled city dataset."""

    spec: CitySpec
    catalog: Catalog
    task: TaskSpec
    itineraries: Tuple[Tuple[str, ...], ...]
    default_start: str

    @property
    def name(self) -> str:
        """City key ("nyc"/"paris")."""
        return self.spec.name


def _slug(name: str) -> str:
    """Stable POI id from its display name."""
    return name.lower().replace(" ", "_").replace("#", "n")


def _name_offset(name: str) -> int:
    """Deterministic per-city seed offset (NOT ``hash()``, which is
    salted per process and would make generation irreproducible)."""
    return sum(ord(ch) for ch in name) % 1000


def generate_city(spec: CitySpec, seed: int = 0) -> TripDataset:
    """Generate one city's POIs, task, and historical itineraries."""
    rng = np.random.default_rng(seed + _name_offset(spec.name))
    themes = spec.themes

    used_names: Set[str] = set()
    poi_rows: List[Dict[str, object]] = []
    # Deal every theme at least once, then fill the rest at random.
    primary_theme_cycle = list(themes) * (spec.num_pois // len(themes) + 1)
    for i in range(spec.num_pois):
        primary_theme = primary_theme_cycle[i]
        extra_count = int(rng.integers(0, 3))
        others = [t for t in themes if t != primary_theme]
        extra_idx = rng.choice(len(others), size=extra_count, replace=False)
        poi_themes = [primary_theme] + [others[int(j)] for j in extra_idx]
        name = compose_poi_name(primary_theme, rng, used_names)
        lo, hi = _DURATIONS.get(primary_theme, _DEFAULT_DURATION)
        duration = float(rng.uniform(lo, hi))
        lat = spec.center[0] + float(rng.normal(0.0, 0.005))
        lon = spec.center[1] + float(rng.normal(0.0, 0.005))
        popularity = float(np.clip(rng.normal(3.6, 0.8), 1.0, 5.0))
        poi_rows.append(
            {
                "id": _slug(name),
                "name": name,
                "themes": poi_themes,
                "duration": round(duration, 2),
                "lat": lat,
                "lon": lon,
                "popularity": round(popularity, 2),
            }
        )

    # The most popular POIs become the must-visit primaries (Eiffel
    # Tower / Louvre analogues), with popularity boosted to the top band.
    by_popularity = sorted(
        range(len(poi_rows)),
        key=lambda i: poi_rows[i]["popularity"],
        reverse=True,
    )
    primary_indices = set(by_popularity[: spec.num_primary_pois])
    for idx in primary_indices:
        poi_rows[idx]["popularity"] = round(float(rng.uniform(4.5, 5.0)), 2)

    # Antecedents: restaurants/cafes require any-of three culture POIs.
    culture_ids = [
        row["id"]
        for row in poi_rows
        if any(t in _CULTURE_THEMES for t in row["themes"])  # type: ignore[operator]
    ]
    items: List[Item] = []
    for i, row in enumerate(poi_rows):
        prereq = Prerequisites.none()
        row_themes: Sequence[str] = row["themes"]  # type: ignore[assignment]
        antecedent_pool = [c for c in culture_ids if c != row["id"]]
        if (
            row_themes[0] in _NEEDS_CULTURE_FIRST
            and antecedent_pool
            and rng.random() < 0.6
        ):
            pick = rng.choice(
                len(antecedent_pool),
                size=min(3, len(antecedent_pool)),
                replace=False,
            )
            prereq = Prerequisites.any_of(
                antecedent_pool[int(j)] for j in pick
            )
        items.append(
            Item(
                item_id=str(row["id"]),
                name=str(row["name"]),
                item_type=(
                    ItemType.PRIMARY
                    if i in primary_indices
                    else ItemType.SECONDARY
                ),
                credits=float(row["duration"]),  # type: ignore[arg-type]
                prerequisites=prereq,
                topics=frozenset(row_themes),
                metadata=make_metadata(
                    lat=row["lat"],
                    lon=row["lon"],
                    popularity=row["popularity"],
                    primary_theme=row_themes[0],
                ),
            )
        )

    catalog = Catalog(
        items,
        name=f"{spec.name.upper()} POIs",
        topic_vocabulary=themes,
    )
    task = build_trip_task(spec, catalog)
    itineraries = _sample_itineraries(spec, items, rng)
    default_start = items[sorted(primary_indices)[0]].item_id
    return TripDataset(
        spec=spec,
        catalog=catalog,
        task=task,
        itineraries=itineraries,
        default_start=default_start,
    )


def build_trip_task(
    spec: CitySpec,
    catalog: Catalog,
    time_budget: Optional[float] = None,
    distance_threshold: Optional[float] = None,
) -> TaskSpec:
    """The trip TPP instance (override budget/distance for sweeps)."""
    hard = HardConstraints.for_trips(
        time_budget=time_budget if time_budget is not None else spec.time_budget,
        num_primary=spec.num_primary,
        num_secondary=spec.num_secondary,
        gap=spec.gap,
        max_distance=(
            distance_threshold
            if distance_threshold is not None
            else spec.distance_threshold
        ),
        theme_adjacency_gap=True,
    )
    soft = SoftConstraints(
        ideal_topics=frozenset(catalog.topic_vocabulary),
        template=InterleavingTemplate.from_labels(TRIP_TEMPLATE_LABELS),
    )
    return TaskSpec(hard=hard, soft=soft, name=f"{spec.name} day trip")


def _sample_itineraries(
    spec: CitySpec, items: Sequence[Item], rng: np.random.Generator
) -> Tuple[Tuple[str, ...], ...]:
    """Popularity- and proximity-biased same-day itinerary walks.

    These play the role of the Flickr photo streams: co-visit frequency
    is the only signal the OMEGA baseline mines from them.
    """
    n = len(items)
    popularity = np.array([float(items[i].meta("popularity")) for i in range(n)])
    lats = np.array([float(items[i].meta("lat")) for i in range(n)])
    lons = np.array([float(items[i].meta("lon")) for i in range(n)])

    # Pairwise proximity weights (precomputed once; ~114^2 is tiny).
    dist = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = haversine_km(lats[i], lons[i], lats[j], lons[j])
            dist[i, j] = dist[j, i] = d
    proximity = 1.0 / (0.3 + dist)
    np.fill_diagonal(proximity, 0.0)

    start_weights = popularity / popularity.sum()
    itineraries: List[Tuple[str, ...]] = []
    for _ in range(spec.num_itineraries):
        size = int(rng.integers(3, 7))
        current = int(rng.choice(n, p=start_weights))
        walk = [current]
        visited = {current}
        while len(walk) < size:
            weights = proximity[current] * popularity
            weights[list(visited)] = 0.0
            total = weights.sum()
            if total <= 0:
                break
            nxt = int(rng.choice(n, p=weights / total))
            walk.append(nxt)
            visited.add(nxt)
            current = nxt
        itineraries.append(tuple(items[i].item_id for i in walk))
    return tuple(itineraries)


def load_city(city: str, seed: int = 0) -> TripDataset:
    """Generate ``"nyc"`` or ``"paris"`` with paper-matching statistics."""
    key = city.lower()
    if key not in CITIES:
        raise DatasetError(f"unknown city: {city!r}")
    return generate_city(CITIES[key], seed=seed)
