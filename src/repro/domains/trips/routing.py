"""Itinerary route optimization.

Example 2 asks that "the itinerary is easily commutable".  RL-Planner
optimizes the *composition*; this post-processor shortens the *walk*:
it reorders an itinerary to reduce total travel distance while
preserving everything that made the plan valid — the primary/secondary
label sequence (so the Eq. 7 score is untouched), antecedent ordering,
the theme-adjacency rule, and the time budget (unchanged by
reordering).

Two passes are applied until a fixed point: same-type swaps (exchange
two items of equal type when it shortens the walk and breaks nothing)
and a same-type-preserving insertion move.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...core.constraints import TaskSpec
from ...core.items import Item
from ...core.plan import Plan
from ...core.validation import (
    PlanValidator,
    haversine_km,
    plan_travel_distance_km,
)


def _distance(items: List[Item]) -> float:
    total = 0.0
    for a, b in zip(items, items[1:]):
        total += haversine_km(
            float(a.meta("lat")), float(a.meta("lon")),
            float(b.meta("lat")), float(b.meta("lon")),
        )
    return total


def _acceptable(
    items: List[Item], task: TaskSpec, validator: PlanValidator
) -> bool:
    plan = Plan(items=tuple(items))
    return validator.is_valid(plan)


def optimize_route(
    plan: Plan,
    task: TaskSpec,
    max_rounds: int = 20,
) -> Tuple[Plan, float, float]:
    """Reorder an itinerary to shorten the total walk.

    Returns ``(optimized plan, distance before, distance after)``.
    Only same-type moves are considered, so the type sequence — and
    with it the Eq. 7 template score — is invariant; every candidate
    ordering is re-validated before acceptance, so antecedents and the
    theme-adjacency rule stay satisfied.  Plans without geo metadata
    are returned unchanged.
    """
    before = plan_travel_distance_km(plan)
    if before is None or len(plan) < 3:
        return plan, before or 0.0, before or 0.0

    validator = PlanValidator(task.hard, credits_are_budget=True)
    items: List[Item] = list(plan.items)
    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        current = _distance(items)
        # Same-type pairwise swaps (skip slot 0: the chosen start).
        for i in range(1, len(items)):
            for j in range(i + 1, len(items)):
                if items[i].item_type is not items[j].item_type:
                    continue
                candidate = list(items)
                candidate[i], candidate[j] = candidate[j], candidate[i]
                if _distance(candidate) + 1e-9 < current and _acceptable(
                    candidate, task, validator
                ):
                    items = candidate
                    current = _distance(items)
                    improved = True
    after = _distance(items)
    return Plan(items=tuple(items), catalog_name=plan.catalog_name), \
        before, after


def route_summary(plan: Plan) -> Optional[List[Tuple[str, str, float]]]:
    """Leg-by-leg (from, to, km) breakdown (None without geo data)."""
    if len(plan) < 2:
        return []
    legs: List[Tuple[str, str, float]] = []
    for a, b in zip(plan.items, plan.items[1:]):
        lat_a, lon_a = a.meta("lat"), a.meta("lon")
        lat_b, lon_b = b.meta("lat"), b.meta("lon")
        if None in (lat_a, lon_a, lat_b, lon_b):
            return None
        legs.append(
            (
                a.item_id,
                b.item_id,
                haversine_km(
                    float(lat_a), float(lon_a),
                    float(lat_b), float(lon_b),
                ),
            )
        )
    return legs
