"""Theme banks and POI-name synthesis for the trip domain.

The paper extracts POI themes from the Google Places API — 21 distinct
themes for NYC and 16 for Paris — and POI names from Flickr tags.  We
reproduce the counts with curated theme banks per city and compose POI
names from theme-flavoured name parts so itineraries read naturally
("Harborview Museum of Art", "Jardin des Ormes").
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

# 21 themes (NYC) / 16 themes (Paris), ordered banks the generator draws
# from verbatim, so counts match the paper exactly.
NYC_THEMES: Tuple[str, ...] = (
    "park", "museum", "bridge", "skyscraper", "market", "theater",
    "gallery", "church", "square", "library", "memorial", "zoo",
    "aquarium", "stadium", "restaurant", "cafe", "waterfront",
    "observatory", "university", "station", "garden",
)

PARIS_THEMES: Tuple[str, ...] = (
    "museum", "gallery", "cathedral", "palace", "river", "street",
    "restaurant", "architecture", "garden", "church", "bridge",
    "monument", "opera", "market", "cafe", "tower",
)

# Name fragments per theme; the generator combines a prefix with a theme
# noun to mint distinct POI names.
_THEME_NOUNS: Dict[str, Tuple[str, ...]] = {
    "park": ("Park", "Common", "Green"),
    "museum": ("Museum", "Museum of Art", "History Museum"),
    "bridge": ("Bridge", "Footbridge"),
    "skyscraper": ("Tower", "Building"),
    "market": ("Market", "Bazaar"),
    "theater": ("Theater", "Playhouse"),
    "gallery": ("Gallery", "Art Gallery"),
    "church": ("Church", "Chapel", "Basilica"),
    "square": ("Square", "Plaza"),
    "library": ("Library", "Athenaeum"),
    "memorial": ("Memorial", "Monument"),
    "zoo": ("Zoo", "Menagerie"),
    "aquarium": ("Aquarium",),
    "stadium": ("Stadium", "Arena"),
    "restaurant": ("Restaurant", "Bistro", "Brasserie"),
    "cafe": ("Cafe", "Coffee House"),
    "waterfront": ("Waterfront", "Pier", "Esplanade"),
    "observatory": ("Observatory", "Lookout"),
    "university": ("University", "College"),
    "station": ("Station", "Terminal"),
    "garden": ("Garden", "Botanical Garden"),
    "cathedral": ("Cathedral",),
    "palace": ("Palace",),
    "river": ("River Walk", "Quay"),
    "street": ("Street", "Promenade"),
    "architecture": ("Hall", "Pavilion"),
    "monument": ("Monument", "Column"),
    "opera": ("Opera House",),
    "tower": ("Tower",),
}

_PREFIXES: Tuple[str, ...] = (
    "Grand", "Old Town", "Harborview", "Riverside", "Royal", "Liberty",
    "Meridian", "Northgate", "Beacon", "Castle Hill", "Lakeside",
    "Imperial", "Orchard", "Summit", "Union", "Vesper", "Willow",
    "Aurora", "Crescent", "Dockside", "Elm Street", "Fountain",
    "Garnet", "Heritage", "Ivory", "Juniper", "Kingsway", "Laurel",
    "Maple", "Noble", "Opal", "Pinnacle", "Quarry", "Regent",
    "Sterling", "Twilight", "Umber", "Verdant", "Wharf", "Zenith",
)


def compose_poi_name(
    primary_theme: str, rng: np.random.Generator, used: set
) -> str:
    """Mint a distinct POI name flavoured by its primary theme."""
    nouns = _THEME_NOUNS.get(primary_theme, (primary_theme.title(),))
    for _ in range(200):
        prefix = _PREFIXES[int(rng.integers(len(_PREFIXES)))]
        noun = nouns[int(rng.integers(len(nouns)))]
        name = f"{prefix} {noun}"
        if name not in used:
            used.add(name)
            return name
    # Exhausted combinations: fall back to a numbered name.
    i = 2
    while f"{primary_theme.title()} #{i}" in used:
        i += 1
    name = f"{primary_theme.title()} #{i}"
    used.add(name)
    return name


def theme_bank(city: str) -> Tuple[str, ...]:
    """The paper-sized theme bank for ``"nyc"`` or ``"paris"``."""
    key = city.lower()
    if key == "nyc":
        return NYC_THEMES
    if key == "paris":
        return PARIS_THEMES
    raise KeyError(f"unknown city: {city!r}")
