"""Degree-program specifications mirroring the paper's four programs.

Section IV-A-1 gives the dataset statistics we reproduce:

* Univ-1 (NJIT-like): M.S. DS Computational Track (31 courses, 60
  topics), M.S. Cybersecurity (30 courses, 61 topics), M.S. CS (32
  courses, 100 topics); hard constraints <30 credits, 5 core,
  5 elective, gap 3> (Section II-B-1's running example).
* Univ-2 (Stanford-like): M.S. Data Science (36 courses, 73 topics)
  with unit constraints over six sub-disciplines; the gold plan is 15
  courses long (gold score 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...core.constraints import (
    HardConstraints,
    InterleavingTemplate,
    SoftConstraints,
    TaskSpec,
)

# Univ-2's six sub-disciplines (Section IV-A-1, items a..f).
UNIV2_CATEGORIES: Tuple[str, ...] = (
    "math_stat_foundations",
    "experimentation",
    "scientific_computing",
    "applied_ml_ds",
    "practical_component",
    "elective",
)


@dataclass(frozen=True)
class ProgramSpec:
    """Statistical and structural description of one degree program.

    Attributes
    ----------
    name:
        Program display name, e.g. ``"M.S. DS-CT"``.
    department:
        Course-code prefix, e.g. ``"CS"``.
    num_courses:
        Courses offered by the program (paper: 31/30/32/36).
    num_topics:
        Target distinct-topic count (paper: 60/61/100/73).
    num_core / num_elective:
        The required split for a plan.
    credits_per_course:
        Fixed credits (3 everywhere in the paper's running example).
    min_credits:
        ``#cr`` of the hard constraints.
    gap:
        Prerequisite gap (3 = one semester at 3 courses/semester).
    core_fraction:
        Fraction of *offered* courses that are core; the paper's proof of
        Theorem 1 assumes fewer cores than electives in the catalog.
    prerequisite_fraction:
        Fraction of courses that carry prerequisites.
    template:
        The interleaving template ``IT``.
    categories:
        Sub-discipline buckets (Univ-2 only) with per-bucket minimum
        credits for a plan.
    """

    name: str
    department: str
    num_courses: int
    num_topics: int
    num_core: int
    num_elective: int
    credits_per_course: float = 3.0
    min_credits: float = 30.0
    gap: int = 3
    core_fraction: float = 0.4
    prerequisite_fraction: float = 0.35
    template_labels: Tuple[Tuple[str, ...], ...] = ()
    categories: Tuple[Tuple[str, float], ...] = ()

    @property
    def plan_length(self) -> int:
        """Courses per plan (= ``min_credits / credits_per_course``)."""
        return self.num_core + self.num_elective

    def template(self) -> InterleavingTemplate:
        """The program's ``IT`` (defaults derived from the split)."""
        if self.template_labels:
            return InterleavingTemplate.from_labels(self.template_labels)
        return InterleavingTemplate.from_labels(
            default_template_labels(self.num_core, self.num_elective)
        )

    def hard_constraints(self) -> HardConstraints:
        """``P_hard`` for this program."""
        return HardConstraints.for_courses(
            min_credits=self.min_credits,
            num_primary=self.num_core,
            num_secondary=self.num_elective,
            gap=self.gap,
            category_credits=dict(self.categories) or None,
        )

    def task(self, ideal_topics, name: Optional[str] = None) -> TaskSpec:
        """Bundle hard + soft constraints into a :class:`TaskSpec`."""
        return TaskSpec(
            hard=self.hard_constraints(),
            soft=SoftConstraints(
                ideal_topics=frozenset(ideal_topics),
                template=self.template(),
            ),
            name=name or self.name,
        )


def default_template_labels(
    num_core: int, num_elective: int
) -> Tuple[Tuple[str, ...], ...]:
    """Three ideal permutations in the spirit of the paper's examples.

    1. Front-load cores, then interleave ("start with one or two core
       courses, then take two electives, then another core course").
    2. Strict alternation for as long as both kinds last.
    3. Cores at the start and end with electives in the middle.
    """
    def perm1() -> Tuple[str, ...]:
        labels = []
        cores, electives = num_core, num_elective
        while cores or electives:
            for _ in range(2):
                if cores:
                    labels.append("P")
                    cores -= 1
            for _ in range(2):
                if electives:
                    labels.append("S")
                    electives -= 1
        return tuple(labels)

    def perm2() -> Tuple[str, ...]:
        labels = []
        cores, electives = num_core, num_elective
        while cores or electives:
            if cores:
                labels.append("P")
                cores -= 1
            if electives:
                labels.append("S")
                electives -= 1
        return tuple(labels)

    def perm3() -> Tuple[str, ...]:
        head = num_core // 2 + num_core % 2
        tail = num_core - head
        return ("P",) * head + ("S",) * num_elective + ("P",) * tail

    # dict.fromkeys dedupes while keeping order (perms can coincide for
    # tiny splits).
    return tuple(dict.fromkeys((perm1(), perm2(), perm3())))


# ---------------------------------------------------------------------------
# The four paper programs
# ---------------------------------------------------------------------------

NJIT_DSCT = ProgramSpec(
    name="Univ-1 M.S. DS-CT",
    department="CS",
    num_courses=31,
    num_topics=60,
    num_core=5,
    num_elective=5,
)

NJIT_CYBERSECURITY = ProgramSpec(
    name="Univ-1 M.S. Cybersecurity",
    department="CS",
    num_courses=30,
    num_topics=61,
    num_core=5,
    num_elective=5,
)

NJIT_CS = ProgramSpec(
    name="Univ-1 M.S. CS",
    department="CS",
    num_courses=32,
    num_topics=100,
    num_core=5,
    num_elective=5,
)

# Univ-2: 15-course plan (gold score 15) over six sub-disciplines; 45
# units with at least one 3-unit course per bucket and a deeper
# applied-ML requirement.
UNIV2_DS = ProgramSpec(
    name="Univ-2 M.S. DS",
    department="STATS",
    num_courses=36,
    num_topics=73,
    num_core=7,
    num_elective=8,
    min_credits=45.0,
    gap=3,
    categories=(
        ("math_stat_foundations", 6.0),
        ("experimentation", 3.0),
        ("scientific_computing", 6.0),
        ("applied_ml_ds", 9.0),
        ("practical_component", 3.0),
        ("elective", 6.0),
    ),
)

ALL_PROGRAMS: Dict[str, ProgramSpec] = {
    "njit_dsct": NJIT_DSCT,
    "njit_cyber": NJIT_CYBERSECURITY,
    "njit_cs": NJIT_CS,
    "univ2_ds": UNIV2_DS,
}
