"""Prerequisite-graph analytics for course catalogs.

The structure advisors reason about — what unlocks what, how deep
requirement chains run, which courses are schedulable in a first
semester — extracted programmatically.  Used by the examples and by
dataset sanity tests (e.g. generated catalogs must keep chains shallow
enough for the paper's 10-slot plans with gap 3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ...core.catalog import Catalog
from ...core.exceptions import DataModelError
from ...core.items import Item


@dataclass(frozen=True)
class PrerequisiteReport:
    """Catalog-level prerequisite statistics."""

    max_chain_depth: int
    num_with_prerequisites: int
    num_unlockers: int
    entry_course_ids: Tuple[str, ...]
    critical_course_ids: Tuple[str, ...]


def chain_depth(catalog: Catalog, item_id: str) -> int:
    """Length of the deepest antecedent chain ending at ``item_id``.

    0 = no prerequisites.  OR-groups take their *shallowest* member
    (any one member suffices) while AND-groups take the deepest — the
    true scheduling depth.
    """
    memo: Dict[str, int] = {}

    def depth(current: str, stack: FrozenSet[str]) -> int:
        if current in memo:
            return memo[current]
        if current in stack:
            raise DataModelError(
                f"prerequisite cycle involving {current!r}"
            )
        item = catalog[current]
        if item.prerequisites.is_empty:
            memo[current] = 0
            return 0
        total = 0
        for group in item.prerequisites.groups:
            members = [m for m in group if m in catalog]
            if not members:
                continue  # dangling reference: not schedulable anyway
            group_depth = min(
                depth(m, stack | {current}) for m in members
            )
            total = max(total, group_depth + 1)
        memo[current] = total
        return total

    return depth(item_id, frozenset())


def max_chain_depth(catalog: Catalog) -> int:
    """The deepest antecedent chain anywhere in the catalog."""
    return max(
        (chain_depth(catalog, item.item_id) for item in catalog),
        default=0,
    )


def unlocked_by(catalog: Catalog, item_id: str) -> Tuple[str, ...]:
    """Every course that transitively lists ``item_id`` upstream."""
    out: List[str] = []
    seen = {item_id}
    queue = deque([item_id])
    while queue:
        current = queue.popleft()
        for dependent in catalog.dependents_of(current):
            if dependent.item_id not in seen:
                seen.add(dependent.item_id)
                out.append(dependent.item_id)
                queue.append(dependent.item_id)
    return tuple(sorted(out))


def entry_courses(catalog: Catalog) -> Tuple[Item, ...]:
    """Courses takeable in a first semester (no prerequisites)."""
    return tuple(
        item for item in catalog if item.prerequisites.is_empty
    )


def topological_layers(catalog: Catalog) -> List[Tuple[str, ...]]:
    """Courses grouped by chain depth (layer 0 = entry courses).

    A plan respecting the gap constraint takes layer-k courses no
    earlier than position ``k * gap``; the layering is the skeleton of
    any valid schedule.
    """
    layers: Dict[int, List[str]] = {}
    for item in catalog:
        layers.setdefault(
            chain_depth(catalog, item.item_id), []
        ).append(item.item_id)
    return [
        tuple(sorted(layers[d])) for d in sorted(layers)
    ]


def analyze_prerequisites(catalog: Catalog) -> PrerequisiteReport:
    """One-shot prerequisite report of a catalog."""
    with_prereqs = [
        item for item in catalog if not item.prerequisites.is_empty
    ]
    unlockers = [
        item for item in catalog
        if catalog.dependents_of(item.item_id)
    ]
    # "Critical" = unlocks the most downstream courses.
    by_unlocks = sorted(
        unlockers,
        key=lambda item: len(unlocked_by(catalog, item.item_id)),
        reverse=True,
    )
    top = by_unlocks[:3]
    return PrerequisiteReport(
        max_chain_depth=max_chain_depth(catalog),
        num_with_prerequisites=len(with_prereqs),
        num_unlockers=len(unlockers),
        entry_course_ids=tuple(
            item.item_id for item in entry_courses(catalog)
        ),
        critical_course_ids=tuple(item.item_id for item in top),
    )
