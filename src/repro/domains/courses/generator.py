"""Synthetic university catalogs matching the paper's dataset statistics.

The paper scrapes NJIT ("Univ-1") and Stanford ("Univ-2") catalogs; those
scrapes are not redistributable, so we generate catalogs that reproduce
every statistic the planner is sensitive to: course counts per program
(31 / 30 / 32 / 36), distinct-topic counts (60 / 61 / 100 / 73), the
core/elective imbalance assumed by Theorem 1 (#core < #elective in the
catalog), prerequisite density with AND/OR structures, and — crucial for
the transfer-learning experiment — a shared course pool between the
M.S. DS-CT and M.S. CS programs, including the real course ids of the
paper's Table VI (CS 675 Machine Learning, MATH 661 Applied Statistics,
...), so transfer tables read like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...core.catalog import Catalog
from ...core.exceptions import DatasetError
from ...core.items import Item, ItemType, Prerequisites
from ..text import extract_topics
from .names import (
    DATA_SCIENCE_TOPICS,
    SECURITY_TOPICS,
    SYSTEMS_CS_TOPICS,
    compose_course_name,
    course_code,
    draw_vocabulary,
)
from .programs import (
    NJIT_CS,
    NJIT_CYBERSECURITY,
    NJIT_DSCT,
    UNIV2_CATEGORIES,
    UNIV2_DS,
    ProgramSpec,
)

# The real shared courses of the paper's Table VI.  Each entry is
# (course id, course name); topics are extracted from the name.
TABLE_VI_COURSES: Tuple[Tuple[str, str], ...] = (
    ("CS 610", "Data Structures and Algorithms"),
    ("CS 608", "Cryptography and Security"),
    ("CS 630", "Operating Systems Design"),
    ("CS 631", "Data Management Systems Design"),
    ("CS 634", "Data Mining"),
    ("CS 636", "Data Analytics with Rstudio"),
    ("CS 639", "Medical Records and Terminologies"),
    ("CS 644", "Introduction to Big Data Systems"),
    ("CS 645", "Security and Privacy in Computer Systems"),
    ("CS 652", "Computer Networks Architectures and Protocols"),
    ("CS 656", "Internet and Higher Layer Protocols"),
    ("CS 667", "Design Techniques for Algorithms"),
    ("CS 675", "Machine Learning"),
    ("CS 677", "Deep Learning"),
    ("CS 683", "Software Project Management"),
    ("MATH 661", "Applied Statistics"),
    ("CS 700B", "Masters Project"),
)


@dataclass(frozen=True)
class GeneratedProgram:
    """One program's catalog plus bookkeeping used by dataset loaders."""

    spec: ProgramSpec
    catalog: Catalog
    default_start: str
    core_ids: Tuple[str, ...]
    elective_ids: Tuple[str, ...]


# ---------------------------------------------------------------------------
# Low-level course fabrication
# ---------------------------------------------------------------------------

def _assign_topic_sets(
    vocabulary: Sequence[str],
    num_courses: int,
    rng: np.random.Generator,
    min_topics: int = 2,
    max_topics: int = 4,
    preassigned: Optional[List[Set[str]]] = None,
) -> List[Set[str]]:
    """Topic sets for courses such that every vocabulary topic is used.

    Topics are dealt round-robin first (guaranteeing full coverage of the
    vocabulary, which is what gives the catalog its exact distinct-topic
    count), then each course is topped up with random extras.
    """
    sets: List[Set[str]] = [set() for _ in range(num_courses)]
    n_fixed = 0
    if preassigned:
        n_fixed = len(preassigned)
        for i, topics in enumerate(preassigned):
            sets[i] = set(topics)

    # Preassigned (shared-pool) courses keep their topic sets verbatim so
    # the same course is topic-identical across programs; only synthetic
    # courses receive round-robin coverage topics and random top-ups.
    mutable = list(range(n_fixed, num_courses)) or list(range(num_courses))
    used = set().union(*sets) if preassigned else set()
    unused = [t for t in vocabulary if t not in used]
    order = [mutable[int(i)] for i in rng.permutation(len(mutable))]
    cursor = 0
    for topic in unused:
        sets[order[cursor % len(order)]].add(topic)
        cursor += 1

    for index in mutable:
        topics = sets[index]
        want = int(rng.integers(min_topics, max_topics + 1))
        while len(topics) < want:
            topics.add(vocabulary[int(rng.integers(len(vocabulary)))])
    return sets


def _assign_prerequisites(
    ids: Sequence[str],
    fraction: float,
    rng: np.random.Generator,
    protected: Sequence[str] = (),
) -> Dict[str, Prerequisites]:
    """Shallow AND/OR prerequisite structures over ``ids``.

    Courses can only require earlier-listed courses (catalog order acts
    as a difficulty level), chains stay depth <= 2, and ``protected``
    courses (plan starting points) never receive prerequisites.  This
    mirrors real programs where a documented share of courses (~35% in
    the paper's datasets) carry one or two antecedents.
    """
    prereqs: Dict[str, Prerequisites] = {i: Prerequisites.none() for i in ids}
    protected_set = set(protected)
    has_prereq: Set[str] = set()
    eligible = [
        (pos, cid)
        for pos, cid in enumerate(ids)
        if pos >= 2 and cid not in protected_set
    ]
    count = int(round(fraction * len(ids)))
    if count == 0 or not eligible:
        return prereqs
    chosen_rows = rng.choice(
        len(eligible), size=min(count, len(eligible)), replace=False
    )
    for row in sorted(int(r) for r in chosen_rows):
        pos, cid = eligible[row]
        # Antecedent pool: earlier courses that do not themselves have
        # prerequisites (keeps chains depth <= 2, so a 10-slot plan with
        # gap 3 stays feasible).
        pool = [ids[p] for p in range(pos) if ids[p] not in has_prereq]
        if not pool:
            continue
        n_ante = int(rng.integers(1, min(2, len(pool)) + 1))
        indices = rng.choice(len(pool), size=n_ante, replace=False)
        antecedents = [pool[int(i)] for i in indices]
        if len(antecedents) == 1:
            prereqs[cid] = Prerequisites.all_of(antecedents)
        elif rng.random() < 0.5:
            prereqs[cid] = Prerequisites.all_of(antecedents)
        else:
            prereqs[cid] = Prerequisites.any_of(antecedents)
        has_prereq.add(cid)
    return prereqs


def _pick_cores(
    ids: Sequence[str],
    spec: ProgramSpec,
    rng: np.random.Generator,
    forced_core: Sequence[str] = (),
) -> Set[str]:
    """Choose which catalog courses are core for this program.

    Keeps #core < #elective (Theorem 1's catalog assumption) while
    guaranteeing at least ``spec.num_core + 2`` cores so plans have
    slack.
    """
    target = max(
        spec.num_core + 2,
        int(round(spec.core_fraction * len(ids))),
    )
    target = min(target, (len(ids) - 1) // 2)  # strictly fewer cores
    cores: Set[str] = set(forced_core)
    remaining = [i for i in ids if i not in cores]
    need = max(0, target - len(cores))
    if need > len(remaining):
        raise DatasetError("not enough courses to satisfy the core target")
    chosen = rng.choice(len(remaining), size=need, replace=False)
    cores.update(remaining[int(i)] for i in chosen)
    return cores


def _build_items(
    ids: Sequence[str],
    names: Dict[str, str],
    topic_sets: Dict[str, Set[str]],
    cores: Set[str],
    prereqs: Dict[str, Prerequisites],
    spec: ProgramSpec,
    categories: Optional[Dict[str, str]] = None,
) -> List[Item]:
    """Assemble :class:`Item` objects for one program catalog."""
    items = []
    for cid in ids:
        items.append(
            Item(
                item_id=cid,
                name=names[cid],
                item_type=(
                    ItemType.PRIMARY if cid in cores else ItemType.SECONDARY
                ),
                credits=spec.credits_per_course,
                prerequisites=prereqs[cid],
                topics=frozenset(topic_sets[cid]),
                category=categories.get(cid) if categories else None,
            )
        )
    return items


# ---------------------------------------------------------------------------
# Univ-1 (NJIT-like): three programs over a shared pool
# ---------------------------------------------------------------------------

def generate_njit_university(
    seed: int = 0,
) -> Dict[str, GeneratedProgram]:
    """Generate the three Univ-1 programs.

    DS-CT and CS share the Table VI course pool (ids, names, topics) so
    the Section IV-D transfer experiment has genuine overlap; each
    program independently decides core/elective roles and prerequisite
    structure, as real programs do.  Cybersecurity is generated over its
    own security vocabulary.

    Returns a dict keyed by ``"njit_dsct"``, ``"njit_cyber"``,
    ``"njit_cs"``.
    """
    rng = np.random.default_rng(seed)

    shared_ids = [cid for cid, _ in TABLE_VI_COURSES]
    shared_names = dict(TABLE_VI_COURSES)
    shared_topics: Dict[str, Set[str]] = {
        cid: set(extract_topics(name)) for cid, name in TABLE_VI_COURSES
    }

    out: Dict[str, GeneratedProgram] = {}
    out["njit_dsct"] = _generate_njit_program(
        NJIT_DSCT,
        rng,
        bank=DATA_SCIENCE_TOPICS,
        shared_ids=shared_ids,
        shared_names=shared_names,
        shared_topics=shared_topics,
        number_range=(601, 699),
        default_start="CS 675",
        forced_core=("CS 675", "CS 610", "CS 644", "CS 636", "MATH 661"),
        dataset_key="njit_dsct",
    )
    out["njit_cs"] = _generate_njit_program(
        NJIT_CS,
        rng,
        bank=DATA_SCIENCE_TOPICS + SYSTEMS_CS_TOPICS,
        shared_ids=shared_ids,
        shared_names=shared_names,
        shared_topics=shared_topics,
        number_range=(601, 699),
        default_start="CS 610",
        forced_core=("CS 610", "CS 630", "CS 631", "CS 656", "CS 700B"),
        dataset_key="njit_cs",
    )
    out["njit_cyber"] = _generate_njit_program(
        NJIT_CYBERSECURITY,
        rng,
        bank=SECURITY_TOPICS,
        shared_ids=["CS 608", "CS 645", "CS 652"],
        shared_names=shared_names,
        shared_topics=shared_topics,
        number_range=(601, 699),
        default_start="CS 608",
        forced_core=("CS 608", "CS 645"),
        dataset_key="njit_cyber",
    )
    return out


def _generate_njit_program(
    spec: ProgramSpec,
    rng: np.random.Generator,
    bank: Sequence[str],
    shared_ids: Sequence[str],
    shared_names: Dict[str, str],
    shared_topics: Dict[str, Set[str]],
    number_range: Tuple[int, int],
    default_start: str,
    forced_core: Sequence[str],
    dataset_key: str,
) -> GeneratedProgram:
    """Build one NJIT-like program around a shared course pool."""
    shared_ids = list(shared_ids)
    n_synthetic = spec.num_courses - len(shared_ids)
    if n_synthetic < 0:
        raise DatasetError(
            f"{spec.name}: shared pool exceeds program size"
        )

    # Vocabulary: shared-course topics first, then bank draws up to the
    # paper's distinct-topic count.
    base_topics: Set[str] = set()
    for cid in shared_ids:
        base_topics |= shared_topics[cid]
    extra_needed = max(0, spec.num_topics - len(base_topics))
    fresh_bank = [t for t in bank if t not in base_topics]
    vocabulary = tuple(sorted(base_topics)) + draw_vocabulary(
        fresh_bank, extra_needed, rng
    )
    if len(vocabulary) != spec.num_topics:
        raise DatasetError(
            f"{spec.name}: vocabulary size {len(vocabulary)} != "
            f"{spec.num_topics}"
        )

    # Synthetic course ids (distinct from the shared pool).
    used_numbers = {
        int(cid.split()[1].rstrip("AB")) for cid in shared_ids
    }
    numbers: List[int] = []
    while len(numbers) < n_synthetic:
        n = int(rng.integers(number_range[0], number_range[1] + 1))
        if n not in used_numbers:
            used_numbers.add(n)
            numbers.append(n)
    synthetic_ids = [course_code(spec.department, n) for n in numbers]

    ids = shared_ids + synthetic_ids
    preassigned = [shared_topics[cid] for cid in shared_ids]
    topic_lists = _assign_topic_sets(
        vocabulary, spec.num_courses, rng, preassigned=preassigned
    )
    topic_sets = {cid: topic_lists[i] for i, cid in enumerate(ids)}

    names: Dict[str, str] = {}
    for cid in ids:
        if cid in shared_names and cid in shared_ids:
            names[cid] = shared_names[cid]
        else:
            sample_size = min(3, len(topic_sets[cid]))
            sample = sorted(topic_sets[cid])[:sample_size]
            names[cid] = compose_course_name(sample, rng)

    # Shuffle catalog order (except we keep the default start early so it
    # never accumulates prerequisites).
    order = [default_start] + [i for i in ids if i != default_start]
    cores = _pick_cores(order, spec, rng, forced_core=forced_core)
    prereqs = _assign_prerequisites(
        order,
        spec.prerequisite_fraction,
        rng,
        protected=tuple(forced_core) + (default_start,),
    )
    items = _build_items(order, names, topic_sets, cores, prereqs, spec)
    catalog = Catalog(items, name=spec.name)
    return GeneratedProgram(
        spec=spec,
        catalog=catalog,
        default_start=default_start,
        core_ids=tuple(i for i in order if i in cores),
        elective_ids=tuple(i for i in order if i not in cores),
    )


# ---------------------------------------------------------------------------
# Univ-2 (Stanford-like): one program with six sub-disciplines
# ---------------------------------------------------------------------------

def generate_univ2_program(seed: int = 0) -> GeneratedProgram:
    """Generate the Univ-2 M.S. DS program (36 courses, 73 topics,
    six sub-discipline buckets with per-bucket unit minima)."""
    spec = UNIV2_DS
    rng = np.random.default_rng(seed + 17)

    vocabulary = draw_vocabulary(
        DATA_SCIENCE_TOPICS + SYSTEMS_CS_TOPICS[:40], spec.num_topics, rng
    )

    departments = ("STATS", "CS", "MS&E", "CME")
    numbers: Set[Tuple[str, int]] = set()
    ids: List[str] = []
    # Table III/XIV reference STATS 263 and MS&E 237 as starting points.
    for fixed in (("STATS", 263), ("MS&E", 237)):
        numbers.add(fixed)
        ids.append(course_code(*fixed))
    while len(ids) < spec.num_courses:
        dept = departments[int(rng.integers(len(departments)))]
        num = int(rng.integers(101, 399))
        if (dept, num) not in numbers:
            numbers.add((dept, num))
            ids.append(course_code(dept, num))

    topic_lists = _assign_topic_sets(vocabulary, spec.num_courses, rng)
    topic_sets = {cid: topic_lists[i] for i, cid in enumerate(ids)}
    names = {}
    for cid in ids:
        sample_size = min(3, len(topic_sets[cid]))
        names[cid] = compose_course_name(
            sorted(topic_sets[cid])[:sample_size], rng
        )

    # Six buckets, each with exactly 6 courses.  A 15-course plan with
    # per-bucket unit minima (2+1+2+3+1+2 = 11 courses pinned) is then
    # always structurally satisfiable.
    categories: Dict[str, str] = {}
    per_bucket = spec.num_courses // len(UNIV2_CATEGORIES)
    for i, cid in enumerate(ids):
        categories[cid] = UNIV2_CATEGORIES[min(i // per_bucket,
                                               len(UNIV2_CATEGORIES) - 1)]

    default_start = "STATS 263"
    # Real sub-discipline programs spread their core offerings across the
    # requirement buckets; mirror that with two cores per category (12 of
    # 36 courses, keeping #core < #elective for Theorem 1).
    cores: Set[str] = {default_start, "MS&E 237"}
    for category in UNIV2_CATEGORIES:
        members = [cid for cid in ids if categories[cid] == category]
        already = sum(1 for cid in members if cid in cores)
        pool = [cid for cid in members if cid not in cores]
        take = max(0, 2 - already)
        chosen = rng.choice(len(pool), size=min(take, len(pool)),
                            replace=False)
        cores.update(pool[int(i)] for i in chosen)
    prereqs = _assign_prerequisites(
        ids,
        spec.prerequisite_fraction,
        rng,
        protected=(default_start, "MS&E 237"),
    )
    items = _build_items(
        ids, names, topic_sets, cores, prereqs, spec, categories=categories
    )
    catalog = Catalog(items, name=spec.name)
    return GeneratedProgram(
        spec=spec,
        catalog=catalog,
        default_start=default_start,
        core_ids=tuple(i for i in ids if i in cores),
        elective_ids=tuple(i for i in ids if i not in cores),
    )
