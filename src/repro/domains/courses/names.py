"""Topic banks and course-name synthesis for the course domain.

The paper's topic vocabularies come from noun extraction over real
course titles (60 DS-CT / 61 Cybersecurity / 100 CS topics at Univ-1,
73 at Univ-2).  We reproduce the *statistics* with curated banks of
realistic data-science / security / CS topic nouns; the generator draws
a vocabulary of the right size from a bank and composes course titles
from the drawn topics, so that :func:`repro.domains.text.extract_topics`
round-trips names back to their topic sets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Topic banks (single-token nouns so extract_topics round-trips exactly)
# ---------------------------------------------------------------------------

DATA_SCIENCE_TOPICS: Tuple[str, ...] = (
    "algorithms", "classification", "clustering", "statistics",
    "regression", "structures", "networks", "probability",
    "visualization", "matrices", "decomposition", "management",
    "databases", "mining", "learning", "optimization", "inference",
    "bayesian", "sampling", "forecasting", "timeseries", "graphs",
    "embeddings", "kernels", "ensembles", "boosting", "trees",
    "recommenders", "ranking", "retrieval", "indexing", "warehousing",
    "pipelines", "streaming", "parallelism", "mapreduce", "spark",
    "hadoop", "sql", "nosql", "transactions", "concurrency",
    "normalization", "calculus", "analysis", "python", "rstudio",
    "simulation", "experiments", "causality", "privacy", "ethics",
    "deployment", "monitoring", "features", "preprocessing",
    "validation", "hypothesis", "anova", "markov", "montecarlo",
    "gradient", "descent", "convexity", "duality", "tensors",
    "transformers", "attention", "convolution", "recurrence",
    "autoencoders", "gans", "reinforcement", "bandits", "planning",
    "nlp", "speech", "vision", "robotics", "genomics", "healthcare",
    "fintech", "pharmaceutical",
)

SECURITY_TOPICS: Tuple[str, ...] = (
    "cryptography", "ciphers", "hashing", "signatures", "certificates",
    "authentication", "authorization", "firewalls", "intrusion",
    "malware", "forensics", "exploits", "vulnerabilities", "patching",
    "phishing", "botnets", "ransomware", "keys", "protocols",
    "tls", "vpn", "anonymity", "steganography", "audit", "compliance",
    "risk", "governance", "identity", "biometrics", "sandboxing",
    "honeypots", "penetration", "hardening", "threats", "defense",
    "incident", "response", "resilience", "blockchain", "wallets",
    "consensus", "zeroknowledge", "sidechannel", "obfuscation",
    "reverse", "engineering", "binary", "fuzzing", "kernel",
    "hypervisor", "containers", "iot", "scada", "wireless",
    "jamming", "spoofing", "dos", "ddos", "darkweb", "osint",
    "watermarking",
)

SYSTEMS_CS_TOPICS: Tuple[str, ...] = (
    "compilers", "parsing", "grammars", "automata", "complexity",
    "computability", "logic", "verification", "semantics", "types",
    "lambda", "functional", "objects", "inheritance", "polymorphism",
    "patterns", "refactoring", "testing", "debugging", "profiling",
    "operating", "systems", "scheduling", "memory", "caching",
    "filesystems", "virtualization", "distributed", "replication",
    "sharding", "latency", "throughput", "routing", "switching",
    "congestion", "sockets", "http", "dns", "architecture",
    "microservices", "middleware", "queues", "events", "actors",
    "threads", "locks", "atomics", "gpu", "fpga", "embedded",
    "realtime", "signals", "interrupts", "drivers", "firmware",
    "assembly", "risc", "pipelining", "superscalar", "branch",
    "prediction", "multicore", "numa", "interconnects", "storage",
    "raid", "backup", "recovery", "availability", "faulttolerance",
    "consistency", "paxos", "raft", "gossip", "overlay", "p2p",
    "mobile", "android", "cloud", "serverless", "orchestration",
    "kubernetes", "devops", "observability", "telemetry", "tracing",
    "usability", "interfaces", "graphics", "rendering", "shaders",
    "animation", "games", "audio", "compression", "codecs",
    "multimedia", "interaction", "accessibility", "crowdsourcing",
)

_CONNECTORS: Tuple[str, ...] = ("and", "for", "with", "in")

_PREFIXES: Tuple[str, ...] = (
    "", "Introduction to ", "Advanced ", "Applied ", "Foundations of ",
    "Topics in ", "Principles of ",
)


def draw_vocabulary(
    bank: Sequence[str], size: int, rng: np.random.Generator
) -> Tuple[str, ...]:
    """Draw a topic vocabulary of exactly ``size`` distinct topics.

    When the bank is smaller than ``size``, numbered variants are
    appended (``"algorithms2"``) — never needed with the shipped banks
    and the paper's sizes, but keeps the generator total.
    """
    bank_list = list(dict.fromkeys(bank))
    if size <= len(bank_list):
        indices = rng.choice(len(bank_list), size=size, replace=False)
        return tuple(bank_list[i] for i in sorted(indices))
    extra = []
    counter = 2
    while len(bank_list) + len(extra) < size:
        for topic in bank_list:
            extra.append(f"{topic}{counter}")
            if len(bank_list) + len(extra) >= size:
                break
        counter += 1
    return tuple(bank_list + extra)


def compose_course_name(
    topics: Sequence[str], rng: np.random.Generator
) -> str:
    """Compose a plausible course title whose noun tokens are ``topics``.

    Examples: ``"Applied Clustering and Regression"``,
    ``"Foundations of Cryptography with Hashing"``.
    """
    words: List[str] = [t.capitalize() for t in topics]
    if len(words) == 1:
        title = words[0]
    else:
        connector = _CONNECTORS[int(rng.integers(len(_CONNECTORS)))]
        title = f"{' '.join(words[:-1])} {connector} {words[-1]}"
    prefix = _PREFIXES[int(rng.integers(len(_PREFIXES)))]
    return f"{prefix}{title}"


def course_code(department: str, number: int) -> str:
    """Format a course id like ``"CS 675"``."""
    return f"{department} {number}"
