"""Course-planning instantiation of TPP (Section II-B-1)."""

from .advising import (
    PrerequisiteReport,
    analyze_prerequisites,
    chain_depth,
    entry_courses,
    max_chain_depth,
    topological_layers,
    unlocked_by,
)

from .generator import (
    GeneratedProgram,
    TABLE_VI_COURSES,
    generate_njit_university,
    generate_univ2_program,
)
from .gold import GoldPlanOracle, gold_course_plan
from .programs import (
    ALL_PROGRAMS,
    NJIT_CS,
    NJIT_CYBERSECURITY,
    NJIT_DSCT,
    UNIV2_CATEGORIES,
    UNIV2_DS,
    ProgramSpec,
    default_template_labels,
)

__all__ = [
    "ALL_PROGRAMS",
    "PrerequisiteReport",
    "analyze_prerequisites",
    "chain_depth",
    "entry_courses",
    "max_chain_depth",
    "topological_layers",
    "unlocked_by",
    "GeneratedProgram",
    "GoldPlanOracle",
    "NJIT_CS",
    "NJIT_CYBERSECURITY",
    "NJIT_DSCT",
    "ProgramSpec",
    "TABLE_VI_COURSES",
    "UNIV2_CATEGORIES",
    "UNIV2_DS",
    "default_template_labels",
    "generate_njit_university",
    "generate_univ2_program",
    "gold_course_plan",
]
