"""Gold-standard course-plan oracle.

The paper's gold standards are handcrafted by academic advisors — by
construction they are plans that (a) satisfy every hard constraint,
(b) exactly follow one of the expert's template permutations (hence the
gold scores of 10 for Univ-1 and 15 for Univ-2 — Eq. 6 at a perfect
match of length H equals H), and (c) cover the student's ideal topics
well.  This oracle reproduces exactly that artifact with a depth-first
search over template slots: advisors get replaced by exhaustive search,
which only strengthens the baseline RL-Planner is compared against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...core.catalog import Catalog
from ...core.constraints import TaskSpec
from ...core.exceptions import PlanningError
from ...core.items import Item, ItemType
from ...core.plan import Plan
from ...core.validation import PlanValidator


class GoldPlanOracle:
    """Search for a template-perfect, constraint-satisfying plan.

    Parameters
    ----------
    catalog:
        The course catalog.
    task:
        Hard + soft constraints (the template drives the slot types).
    max_expansions:
        Safety cap on DFS node expansions.
    """

    def __init__(
        self, catalog: Catalog, task: TaskSpec, max_expansions: int = 200_000
    ) -> None:
        self.catalog = catalog
        self.task = task
        self.max_expansions = max_expansions
        self._validator = PlanValidator(task.hard)

    def find(self, start_item_id: Optional[str] = None) -> Plan:
        """Return a gold plan, optionally pinned to a starting item.

        Raises
        ------
        PlanningError
            When no template permutation admits a valid completion
            within the expansion budget.
        """
        for permutation in self.task.soft.template:
            plan = self._search_permutation(permutation, start_item_id)
            if plan is not None:
                return plan
        raise PlanningError(
            f"no gold plan exists for task {self.task.name!r} in catalog "
            f"{self.catalog.name!r}"
        )

    # ------------------------------------------------------------------
    # DFS over template slots
    # ------------------------------------------------------------------

    def _search_permutation(
        self,
        permutation: Sequence[ItemType],
        start_item_id: Optional[str],
    ) -> Optional[Plan]:
        self._expansions = 0
        chosen: List[Item] = []
        positions: Dict[str, int] = {}
        covered: Set[str] = set()
        if self._dfs(permutation, 0, chosen, positions, covered, start_item_id):
            plan = Plan(items=tuple(chosen), catalog_name=self.catalog.name)
            if self._validator.is_valid(plan):
                return plan
        return None

    def _dfs(
        self,
        permutation: Sequence[ItemType],
        slot: int,
        chosen: List[Item],
        positions: Dict[str, int],
        covered: Set[str],
        start_item_id: Optional[str],
    ) -> bool:
        if slot == len(permutation):
            return self._category_minima_met(chosen)
        if self._expansions >= self.max_expansions:
            return False

        for item in self._candidates(
            permutation[slot], slot, positions, covered, start_item_id
        ):
            self._expansions += 1
            chosen.append(item)
            positions[item.item_id] = slot
            gained = item.topics - covered
            covered |= gained
            if self._category_feasible(
                chosen, len(permutation) - slot - 1
            ) and self._dfs(
                permutation, slot + 1, chosen, positions, covered,
                start_item_id,
            ):
                return True
            chosen.pop()
            del positions[item.item_id]
            covered -= gained
        return False

    def _candidates(
        self,
        required_type: ItemType,
        slot: int,
        positions: Dict[str, int],
        covered: Set[str],
        start_item_id: Optional[str],
    ) -> List[Item]:
        """Eligible items for a slot, best topic-coverage gain first.

        Gold plans are *template-perfect*: every slot is filled by an
        item of exactly the slot's type, which is what makes the gold
        score equal the plan length ``H`` under Eq. 6 (zeta = matches =
        k).
        """
        if slot == 0 and start_item_id is not None:
            start = self.catalog[start_item_id]
            if start.item_type is not required_type:
                return []
            return [start]

        ideal = self.task.soft.ideal_topics
        out: List[Tuple[int, str, Item]] = []
        for item in self.catalog:
            if item.item_id in positions:
                continue
            if item.item_type is not required_type:
                continue
            if not item.prerequisites.satisfied_by(
                positions, slot, self.task.hard.gap
            ):
                continue
            gain = len((item.topics - covered) & ideal)
            # Advisors prefer slots that add new ideal topics; zero-gain
            # items stay eligible (small catalogs need every course) but
            # sort last.
            out.append((-gain, item.item_id, item))
        out.sort()
        return [item for _, _, item in out]

    # ------------------------------------------------------------------
    # Category (Univ-2) feasibility pruning
    # ------------------------------------------------------------------

    def _category_minima_met(self, chosen: Sequence[Item]) -> bool:
        minima = self.task.hard.category_credit_map
        if not minima:
            return True
        earned: Dict[str, float] = {}
        for item in chosen:
            if item.category is not None:
                earned[item.category] = (
                    earned.get(item.category, 0.0) + item.credits
                )
        return all(
            earned.get(cat, 0.0) >= need - 1e-9
            for cat, need in minima.items()
        )

    def _category_feasible(
        self, chosen: Sequence[Item], slots_left: int
    ) -> bool:
        """Prune branches that can no longer satisfy category minima."""
        minima = self.task.hard.category_credit_map
        if not minima:
            return True
        earned: Dict[str, float] = {}
        used = {item.item_id for item in chosen}
        for item in chosen:
            if item.category is not None:
                earned[item.category] = (
                    earned.get(item.category, 0.0) + item.credits
                )
        deficit_slots = 0
        for cat, need in minima.items():
            shortfall = need - earned.get(cat, 0.0)
            if shortfall <= 1e-9:
                continue
            available = [
                i for i in self.catalog.in_category(cat)
                if i.item_id not in used
            ]
            if not available:
                return False
            per_course = min(i.credits for i in available)
            courses_needed = int(-(-shortfall // per_course))  # ceil
            if courses_needed > len(available):
                return False
            deficit_slots += courses_needed
        return deficit_slots <= slots_left


def gold_course_plan(
    catalog: Catalog, task: TaskSpec, start_item_id: Optional[str] = None
) -> Plan:
    """Convenience wrapper around :class:`GoldPlanOracle`."""
    return GoldPlanOracle(catalog, task).find(start_item_id)
