"""Application domains instantiating the TPP framework.

The paper instantiates the generic item/constraint model twice:
course planning (Section II-B-1, datasets Univ-1 / Univ-2) and trip
planning (Section II-B-2, datasets NYC / Paris).  Each sub-package
provides the domain's item flavour, a synthetic dataset generator that
matches the paper's dataset statistics, and gold-standard plan oracles.
"""

from .text import extract_topics, tokenize, STOPWORDS

__all__ = ["extract_topics", "tokenize", "STOPWORDS"]
